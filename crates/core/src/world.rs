//! `CardWorld` — the complete protocol-over-network world.
//!
//! Couples a [`Network`] with per-node CARD state (contact tables, RNG
//! streams) and drives the event loop of the mobile experiments: mobility
//! ticks (topology refresh) interleaved with per-period validation rounds
//! (§III.C.3) and re-selection (rule 5). All static analyses (reachability,
//! one-shot selection, queries) are direct method calls.
//!
//! ## Shard-owned protocol state
//!
//! Per-node protocol state — contact tables, per-node RNG streams, backoff
//! counters, the §V hint-store span, and the CSQ walk workspace — is *owned*
//! by its `ProtocolShard`: shard `k` holds the state of the contiguous
//! node span `[k·per, (k+1)·per)` (the canonical
//! [`sim_core::par::shard_spans`] partition; `per = ceil(N / shards)`).
//! There is no flat whole-network array behind the shards; cross-shard
//! reads go through read-only views ([`TablesView`], [`HintsView`]) and
//! cross-shard *writes* become typed `ProtocolMsg` messages routed
//! through a [`MessagePlane`] and applied by the owning shard in a
//! deterministic drain phase.
//!
//! The whole-network protocol sweeps ([`CardWorld::select_all_contacts`]
//! and [`CardWorld::validation_round`]) fan each shard out to exactly one
//! worker via [`sim_core::par::parallel_shard_map`]; a shard's sweep
//! touches only its own state plus the immutable [`Network`].
//!
//! **Determinism.** Every random protocol decision draws from the RNG
//! stream of the node making it (derived as `("card-node", node)` from the
//! config seed), never from a shared stream. Message counters accumulate
//! into per-shard [`MsgStats`] deltas merged in shard order afterwards, and
//! plane messages are delivered in `(destination shard, source shard,
//! send sequence)` order — a pure function of the protocol's own send
//! order, independent of worker scheduling. The result of a sweep is
//! therefore a pure function of `(network, config, per-node state)` —
//! bit-identical across worker counts, shard counts, and the serial
//! reference paths ([`CardWorld::select_all_contacts_serial`],
//! [`CardWorld::validation_round_serial`]), which exist precisely to pin
//! that equivalence in tests and benches.
//!
//! ## The message plane
//!
//! Three protocol interactions cross shard-ownership boundaries and are
//! expressed as messages:
//!
//! * **Hint deposits** (`ProtocolMsg::Deposit`): a resolved query of a
//!   batched sweep deposits hints at relay nodes that usually live on
//!   other shards. The sweep logs deposits per source shard, routes them
//!   to the holder's owner shard through one exchange round, and each
//!   shard applies its own mailbox — see [`CardWorld::query_all`].
//! * **Query expansion** (`ProtocolMsg::Expand` /
//!   `ProtocolMsg::Contacts`): the plane-routed sweep
//!   [`CardWorld::query_all_plane`] expands query frontiers by asking the
//!   owner shard of each frontier node for its contact list instead of
//!   reading the table directly (two exchange rounds per escalation
//!   depth).
//! * **Validation traffic metering**: contact-path validation walks paths
//!   that cross span boundaries; the retained direct-read implementation
//!   meters those crossings per round into
//!   [`PlaneStats::metered_crossings`] (via
//!   [`crate::maintenance::path_shard_crossings`]) without materializing
//!   per-hop messages, so the plane's traffic columns stay honest at
//!   N=10⁶.
//!
//! **Drain ordering contract.** A mailbox delivers `(src, msg)` pairs
//! sorted by source shard, then send order within the source — the order
//! [`MessagePlane::exchange`] constructs by draining outbox lanes
//! src-major. Because batched sweeps send in pair order within each source
//! shard, the per-holder deposit sequence any store observes equals the
//! global pair order restricted to that holder, which is what makes
//! plane-routed sweeps bit-identical to the serial reference at *any*
//! shard count (the one-shard plane degenerates to a single local lane
//! with the same ordering).
//!
//! ## Batched query sweeps
//!
//! Queries are read-only over the protocol state (contact tables and
//! neighborhood tables; no RNG draws), so [`CardWorld::query_all`] shards
//! the *pair list* rather than the node spans: each shard of pairs runs
//! on a shard-owned [`QueryScratch`] (the incremental-escalation walk
//! workspace — see [`crate::query`]) and accumulates its DSQ/reply
//! counters into a per-shard delta, merged into the world statistics in
//! shard order. Every query of a sweep lands at the same virtual instant
//! and zero counts never record, so the shard deltas are plain counter
//! pairs recorded in bulk — the resulting buckets are bit-identical to
//! per-query recording, minus thousands of map probes per sweep. Outcomes
//! are a pure function of `(network, tables, pair)`, so the sweep equals
//! [`CardWorld::query_all_serial`] — and a loop of [`CardWorld::query`]
//! calls — bit for bit at any worker or shard count.
//!
//! ## Fault injection
//!
//! [`CardWorld::enable_faults`] arms a seeded [`FaultPlan`]
//! (crash/rejoin events, a partition window, per-message drop/delay —
//! see [`sim_core::faults`]). Fault application is fused to the
//! validation round itself: every driver (the tick loop, the event
//! driver, direct calls) applies round `r`'s node events and partition
//! transitions immediately before executing round `r`, so tick and
//! event modes see identical fault histories by construction. All fault
//! decisions key on protocol content (node ids, rounds, message
//! payloads) hashed with the plan seed — never on shard or worker
//! coordinates — which keeps a faulted run bit-identical at any shard
//! count and against the serial reference paths. Protocol hardening
//! under faults: confirmed-dead contacts are tombstoned (and skipped by
//! re-selection until the TTL expires), unacked validations extend
//! per-contact retry windows, hinted probes fall back to the plain walk
//! when a hint's next hop is crashed, and failed queries re-run with
//! capped exponential backoff through a [`QueryRetryQueue`] drained on
//! the validation-round lattice.

use manet_routing::network::Network;
use mobility::model::MobilityModel;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::engine::Engine;
use sim_core::faults::{FaultPlan, FaultState, FaultVerdict, NodeFaultKind};
use sim_core::par::{max_workers, parallel_shard_map, shard_spans};
use sim_core::plane::{MessagePlane, PlaneStats};
use sim_core::rng::{RngStream, SeedSplitter};
use sim_core::stats::{MsgKind, MsgStats, TimeSeries};
use sim_core::time::{SimDuration, SimTime};

use crate::config::CardConfig;
use crate::contact::{ContactTable, TableSource};
use crate::csq::{select_contacts, CsqScratch, ALL_EDGE_NODES};
use crate::hints::{HintDeposit, HintLookup, HintStats, HintStore, Lookup};
use crate::maintenance::{
    path_shard_crossings, validate_contacts, validate_contacts_filtered, ValidationReport,
};
use crate::query::{
    dsq_query, dsq_query_faulted_unrecorded, dsq_query_hinted, dsq_query_hinted_faulted_unrecorded,
    dsq_query_hinted_unrecorded, dsq_query_unrecorded, escalate_faulted_unrecorded,
    escalate_unrecorded, HintContext, QueryFaultFilter, QueryOutcome, QueryRetryQueue,
    QueryScratch, RetryStats,
};
use crate::reachability::ReachabilitySummary;
use crate::resources::{resource_query, resource_query_hinted, ResourceId, ResourceRegistry};
use crate::standing::StandingQueries;
use manet_routing::network::DirtyReport;

/// Aggregated maintenance counters over a whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceTotals {
    /// Successful path validations.
    pub validated: u64,
    /// Contacts lost to unsalvageable paths.
    pub lost: u64,
    /// Contacts dropped by the `[2R, r]` rule.
    pub dropped_out_of_range: u64,
    /// Paths healed by local recovery.
    pub recovered: u64,
}

impl MaintenanceTotals {
    fn absorb(&mut self, r: &ValidationReport) {
        self.validated += r.validated as u64;
        self.lost += r.lost as u64;
        self.dropped_out_of_range += r.dropped_out_of_range as u64;
        self.recovered += r.recovered as u64;
    }

    fn merge(&mut self, other: &MaintenanceTotals) {
        self.validated += other.validated;
        self.lost += other.lost;
        self.dropped_out_of_range += other.dropped_out_of_range;
        self.recovered += other.recovered;
    }
}

/// Live fault-injection state of a world with faults armed: the immutable
/// plan plus the evolving down/partition state and lifecycle counters.
#[derive(Clone)]
struct FaultRuntime {
    plan: FaultPlan,
    state: FaultState,
    /// Fault rounds applied so far (the next validation round executes
    /// round `round`'s events first).
    round: u32,
    crashes: u64,
    rejoins: u64,
    partitions_opened: u64,
    partitions_healed: u64,
    /// Tombstones found past their TTL by the in-run liveness check
    /// (expected to stay 0; surfaced, never asserted, in release runs).
    liveness_violations: u64,
    /// Stale grid buckets found by the targeted residency audit of
    /// crash/rejoin sites (expected to stay 0).
    grid_audit_violations: u64,
    /// Shard-invariant salt mixed into deposit-message verdict keys so
    /// identical payloads in different sweeps draw independent verdicts.
    sweep_counter: u64,
}

/// Snapshot of the fault subsystem, surfaced by
/// [`CardWorld::fault_report`] (all-zero when faults are disabled).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Fault rounds applied so far.
    pub rounds_applied: u32,
    /// Crash events executed.
    pub crashes: u64,
    /// Rejoin events executed.
    pub rejoins: u64,
    /// Nodes currently down.
    pub down_now: usize,
    /// Partition windows opened.
    pub partitions_opened: u64,
    /// Partition windows healed.
    pub partitions_healed: u64,
    /// Is a partition open right now?
    pub partition_active: bool,
    /// Tombstones observed past their TTL (0 in a healthy run).
    pub liveness_violations: u64,
    /// Stale grid buckets at crash/rejoin sites (0 in a healthy run).
    pub grid_audit_violations: u64,
    /// Query-retry lifecycle counters.
    pub retry: RetryStats,
}

/// One shard of the world's protocol state: the *owner* of a contiguous
/// node span's contact tables, RNG streams, backoff counters, hint-store
/// span, and walk workspace. Sweeps hand each shard to exactly one worker;
/// nothing outside the shard writes this state except through the message
/// plane's drain phase.
#[derive(Clone)]
struct ProtocolShard {
    /// First node index of the owned span (`contacts[k]` is node
    /// `start + k`).
    start: usize,
    contacts: Vec<ContactTable>,
    rngs: Vec<RngStream>,
    backoff_remaining: Vec<u32>,
    backoff_level: Vec<u32>,
    /// Persistent CSQ walk workspace (grows to O(N) once, then reused
    /// allocation-free across every sweep).
    scratch: CsqScratch,
    /// This span's slice of the §V route-hint cache (`Some` iff hints are
    /// enabled on the world).
    hints: Option<HintStore>,
}

impl ProtocolShard {
    fn len(&self) -> usize {
        self.contacts.len()
    }
}

/// Typed cross-shard protocol messages routed through the world's
/// [`MessagePlane`].
#[derive(Clone, Debug)]
enum ProtocolMsg {
    /// Deposit a route hint at `HintDeposit::holder` (owner shard applies).
    Deposit(HintDeposit),
    /// Plane-routed sweep: query `q` asks the owner of `node` for its
    /// contact list.
    Expand {
        /// Index of the asking query in the sweep's pair list.
        q: u32,
        /// The frontier node whose table is requested.
        node: NodeId,
    },
    /// Reply to an [`ProtocolMsg::Expand`]: `node`'s contact list as
    /// `(contact, path hops)` pairs, in table order.
    Contacts {
        /// Index of the asking query.
        q: u32,
        /// The node whose table this is.
        node: NodeId,
        /// `(contact id, stored path hops)` per live contact.
        list: Vec<(NodeId, u16)>,
    },
}

/// Read-only view over every node's contact table across the shard-owned
/// spans — the [`TableSource`] the query/reachability/resource layers use
/// now that no flat whole-network table array exists.
#[derive(Clone, Copy)]
pub struct TablesView<'a> {
    shards: &'a [ProtocolShard],
    per: usize,
    n: usize,
}

impl<'a> TablesView<'a> {
    /// Number of nodes covered (= network size).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty network.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterate every node's table in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = &'a ContactTable> + 'a {
        self.shards.iter().flat_map(|s| s.contacts.iter())
    }
}

impl TableSource for TablesView<'_> {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        let s = &self.shards[i / self.per];
        &s.contacts[i - s.start]
    }
}

impl std::ops::Index<usize> for TablesView<'_> {
    type Output = ContactTable;

    #[inline]
    fn index(&self, i: usize) -> &ContactTable {
        let s = &self.shards[i / self.per];
        &s.contacts[i - s.start]
    }
}

/// Read-only view over the shard-owned hint-store spans — the
/// [`HintLookup`] consulted by queries (lookups never mutate a store, so
/// the view is safe to share across a frozen parallel phase).
#[derive(Clone, Copy)]
pub struct HintsView<'a> {
    shards: &'a [ProtocolShard],
    per: usize,
}

impl HintsView<'_> {
    fn store_of(&self, holder: NodeId) -> &HintStore {
        self.shards[holder.index() / self.per]
            .hints
            .as_ref()
            .expect("hint view over a world without stores")
    }

    /// Total nodes covered by the spans.
    pub fn node_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hints.as_ref().map_or(0, HintStore::node_count))
            .sum()
    }

    /// Live (non-empty) hint slots across all spans.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hints.as_ref().map_or(0, HintStore::len))
            .sum()
    }

    /// True when no span holds any hint.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The freshness epoch (all spans advance together each validation
    /// round, so any span's epoch is *the* epoch).
    pub fn epoch(&self) -> u32 {
        self.shards
            .first()
            .and_then(|s| s.hints.as_ref())
            .map_or(0, HintStore::epoch)
    }

    /// Estimated heap bytes across all spans.
    pub fn memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.hints.as_ref().map_or(0, HintStore::memory_bytes))
            .sum()
    }
}

impl HintLookup for HintsView<'_> {
    #[inline]
    fn lookup(&self, holder: NodeId, key: crate::hints::HintKey) -> Lookup {
        self.store_of(holder).lookup(holder, key)
    }
}

/// Everything a shard's sweep emits, merged into the world in shard order.
#[derive(Debug)]
struct ShardDelta {
    stats: MsgStats,
    maintenance: MaintenanceTotals,
    /// Span-boundary crossings of the round's validation traffic (metered,
    /// not materialized — see the module docs).
    crossings: u64,
    /// Tombstones found past their TTL this round (always 0 on the calm
    /// path, which never creates tombstones).
    liveness_violations: u64,
}

/// Simulation events of the mobile run loop.
enum SimEvent {
    /// Move nodes, then incrementally refresh connectivity and the dirty
    /// neighborhood tables (see [`Network::refresh`]).
    MobilityTick,
    /// Validate every node's contacts; re-select up to NoC (§III.C.3.5).
    ValidationRound,
}

/// In-flight state of one query in the plane-routed sweep
/// ([`CardWorld::query_all_plane`]).
struct PlaneQuery {
    target: NodeId,
    frontier: Vec<(NodeId, u64)>,
    next: Vec<(NodeId, u64)>,
    /// Nodes already consumed by this query's walk (frontiers are small —
    /// bounded by NoC^depth — so a linear scan beats a hash set here).
    seen: Vec<NodeId>,
    /// Cumulative hop cost of completed levels (the re-send charge base).
    walked: u64,
    query_msgs: u64,
    done: Option<QueryOutcome>,
}

/// The CARD world: network + shard-owned protocol state + measurement.
///
/// `Clone` snapshots the entire world — network, shards, RNG streams,
/// statistics — so divergent what-if runs (and the sweep benches) can
/// branch from a common prepared state.
#[derive(Clone)]
pub struct CardWorld {
    net: Network,
    cfg: CardConfig,
    stats: MsgStats,
    /// Absolute virtual time reached so far (advanced by `run_mobile`).
    now: SimTime,
    /// (time, total live contacts) after each validation round (Fig 13).
    contacts_series: TimeSeries,
    maintenance: MaintenanceTotals,
    /// The shard-owned protocol state; `shards.len()` is the shard count.
    shards: Vec<ProtocolShard>,
    /// Span width of the canonical partition (`ceil(N / shards)`, min 1);
    /// node `i` is owned by shard `i / per`.
    per: usize,
    /// One persistent query walk workspace per shard (pair sweeps need a
    /// mutable scratch while reading *all* shards' tables immutably, so
    /// these live outside the shards, in lockstep with them). Scratch 0
    /// also serves the one-off [`CardWorld::query`] path.
    query_scratch: Vec<QueryScratch>,
    /// The cross-shard message plane (hint deposits, plane-routed query
    /// expansion, metered validation crossings).
    plane: MessagePlane<ProtocolMsg>,
    /// Is the §V route-hint cache active (spans allocated in the shards)?
    hints_on: bool,
    /// Hit/miss/staleness counters of the hint subsystem.
    hint_stats: HintStats,
    /// Reusable deposit log for the live single-query path.
    hint_deposits: Vec<HintDeposit>,
    /// Per-source-shard deposit logs reused across batched sweeps
    /// (allocated once, cleared per sweep).
    sweep_deposits: Vec<Vec<HintDeposit>>,
    /// Long-lived standing subscriptions (see [`crate::standing`]).
    standing: StandingQueries,
    /// Reusable drain buffer for pending standing-query revalidations.
    standing_ids: Vec<u32>,
    /// Armed fault plan and its evolving state; `None` (the common case)
    /// keeps every calm path untouched.
    faults: Option<FaultRuntime>,
    /// Failed faulted queries waiting to re-run (drained each round).
    query_retry: QueryRetryQueue,
    /// Reusable drain buffer for due query retries.
    retry_due: Vec<(NodeId, NodeId, u32)>,
}

/// Cap on the exponential selection backoff level (2^5 − 1 = 31 rounds).
const MAX_BACKOFF_LEVEL: u32 = 5;

/// Default protocol shard count: twice the fan-out width, so the pull-queue
/// scheduling in `sim_core::par` can rebalance when CSQ walk costs differ
/// across spans, without multiplying the O(N) per-shard scratch memory
/// further than needed.
fn default_shard_count() -> usize {
    (2 * max_workers()).max(1)
}

/// Partition flat per-node state into owned shards along the canonical
/// [`shard_spans`] partition. `hints` carries `(slots_per_bucket, ttl,
/// epoch)` when the route-hint cache is enabled; the created span stores
/// are empty (callers migrating an existing cache copy slots afterwards).
fn partition_state(
    n: usize,
    shards: usize,
    mut contacts: Vec<ContactTable>,
    mut rngs: Vec<RngStream>,
    mut backoff_remaining: Vec<u32>,
    mut backoff_level: Vec<u32>,
    hints: Option<(usize, u32, u32)>,
) -> Vec<ProtocolShard> {
    let spans = shard_spans(n, shards);
    let mut out = Vec::with_capacity(spans.len());
    for span in spans {
        let len = span.end - span.start;
        let rest = contacts.split_off(len);
        let my_contacts = std::mem::replace(&mut contacts, rest);
        let rest = rngs.split_off(len);
        let my_rngs = std::mem::replace(&mut rngs, rest);
        let rest = backoff_remaining.split_off(len);
        let my_br = std::mem::replace(&mut backoff_remaining, rest);
        let rest = backoff_level.split_off(len);
        let my_bl = std::mem::replace(&mut backoff_level, rest);
        let store = hints.map(|(spb, ttl, epoch)| {
            let mut s = HintStore::new_span(span.start, len, spb, ttl);
            s.set_epoch(epoch);
            s
        });
        out.push(ProtocolShard {
            start: span.start,
            contacts: my_contacts,
            rngs: my_rngs,
            backoff_remaining: my_br,
            backoff_level: my_bl,
            scratch: CsqScratch::new(),
            hints: store,
        });
    }
    out
}

impl CardWorld {
    /// Instantiate a scenario (uniform placement from `cfg.seed`) and build
    /// the world.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CardConfig::validate`]).
    pub fn build(scenario: &Scenario, cfg: CardConfig) -> Self {
        cfg.validate();
        let net = Network::from_scenario(scenario, cfg.radius, cfg.seed);
        Self::from_network(net, cfg)
    }

    /// Wrap an existing network (custom topologies, tests).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the network's zone radius
    /// differs from `cfg.radius`.
    pub fn from_network(net: Network, cfg: CardConfig) -> Self {
        cfg.validate();
        assert_eq!(
            net.radius(),
            cfg.radius,
            "network zone radius {} != config R {}",
            net.radius(),
            cfg.radius
        );
        let n = net.node_count();
        let splitter = SeedSplitter::new(cfg.seed);
        let contacts = (0..n).map(|_| ContactTable::new()).collect();
        let rngs = (0..n)
            .map(|i| splitter.stream("card-node", i as u64))
            .collect();
        let k = default_shard_count();
        let hcfg = cfg
            .hints_enabled
            .then_some((cfg.hint_slots_per_bucket, cfg.hint_ttl, 0u32));
        let shards = partition_state(n, k, contacts, rngs, vec![0; n], vec![0; n], hcfg);
        let hints_on = cfg.hints_enabled;
        CardWorld {
            net,
            cfg,
            stats: MsgStats::new(SimDuration::from_secs(2)),
            now: SimTime::ZERO,
            contacts_series: TimeSeries::new(),
            maintenance: MaintenanceTotals::default(),
            shards,
            per: n.div_ceil(k).max(1),
            query_scratch: (0..k).map(|_| QueryScratch::new()).collect(),
            plane: MessagePlane::new(k),
            hints_on,
            hint_stats: HintStats::default(),
            hint_deposits: Vec::new(),
            sweep_deposits: (0..k).map(|_| Vec::new()).collect(),
            standing: StandingQueries::new(n),
            standing_ids: Vec::new(),
            faults: None,
            query_retry: QueryRetryQueue::new(cfg.query_retry_cap),
            retry_due: Vec::new(),
        }
    }

    /// Number of protocol shards the whole-network sweeps fan out over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Re-partition the shard-owned protocol state over `shards` shards,
    /// migrating contact tables, RNG streams, backoff counters, and hint
    /// spans (slot contents and freshness epoch survive the move). Results
    /// are shard-count-independent — per-node RNG streams make each node's
    /// decisions a function of its own state, and plane delivery order is
    /// pinned to the protocol's send order — so this only moves the
    /// parallelism/memory trade-off.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn set_shard_count(&mut self, shards: usize) {
        assert!(shards > 0, "need at least one protocol shard");
        if shards == self.shards.len() {
            return;
        }
        let n = self.net.node_count();
        let old_per = self.per;
        let mut old = std::mem::take(&mut self.shards);
        let epoch = old
            .iter()
            .find_map(|s| s.hints.as_ref().map(HintStore::epoch))
            .unwrap_or(0);
        let mut contacts = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        let mut br = Vec::with_capacity(n);
        let mut bl = Vec::with_capacity(n);
        for s in &mut old {
            contacts.append(&mut s.contacts);
            rngs.append(&mut s.rngs);
            br.append(&mut s.backoff_remaining);
            bl.append(&mut s.backoff_level);
        }
        let hcfg =
            self.hints_on
                .then_some((self.cfg.hint_slots_per_bucket, self.cfg.hint_ttl, epoch));
        let mut new_shards = partition_state(n, shards, contacts, rngs, br, bl, hcfg);
        if self.hints_on {
            // Migrate the cached hints: each node's slot region and LRU
            // clock move verbatim from its old span store to its new one.
            for s in &mut new_shards {
                let store = s.hints.as_mut().expect("hinted world rebuilt hintless");
                for i in s.start..s.start + s.contacts.len() {
                    let old_store = old[i / old_per]
                        .hints
                        .as_ref()
                        .expect("hinted world missing an old span store");
                    store.copy_node_from(old_store, NodeId::from(i));
                }
            }
        }
        self.shards = new_shards;
        self.per = n.div_ceil(shards).max(1);
        self.query_scratch.resize_with(shards, QueryScratch::new);
        self.query_scratch.shrink_to_fit();
        self.sweep_deposits.resize_with(shards, Vec::new);
        self.sweep_deposits.shrink_to_fit();
        // Rebuild the plane at the new width, migrating any undelivered
        // messages (a lossy fault plane can park deferred deposits between
        // sweeps). Deferred messages re-enter the deferred lane of the
        // holder's new owner — their delivery verdict is already spent, so
        // re-sending them through an outbox would draw a second verdict
        // and diverge from a run that never resharded. Queued messages
        // (never yet exchanged) re-enter outboxes and are counted as sent
        // at their first exchange, exactly as before the move. Both walks
        // preserve global `(src, dst, seq)` order, so the per-holder
        // delivery sequence is unchanged.
        let (deferred, queued) = self.plane.take_undelivered();
        let plane_stats = self.plane.stats().clone();
        self.plane = MessagePlane::new(shards);
        *self.plane.stats_mut() = plane_stats;
        let new_per = self.per;
        let route = move |msg: &ProtocolMsg| -> usize {
            let ProtocolMsg::Deposit(d) = msg else {
                unreachable!("mid-call plane messages cannot survive a reshard");
            };
            d.holder.index() / new_per
        };
        for msg in deferred {
            let dst = route(&msg);
            self.plane.defer(dst, dst, msg);
        }
        if !queued.is_empty() {
            let (outboxes, _) = self.plane.split_mut();
            for msg in queued {
                let dst = route(&msg);
                outboxes[dst].send(dst, msg);
            }
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Stage-by-stage work counters of the network's last topology
    /// refresh. Mobility ticks inside [`CardWorld::run_mobile`] run the
    /// mover-driven pipeline (mobility reports its movers, the grid and
    /// CSR adjacency are patched around them), and these counters are the
    /// observability hook: movers reported, grid entries re-bucketed,
    /// adjacency rows patched, neighborhoods rebuilt.
    pub fn pipeline_counters(&self) -> manet_routing::network::PipelineCounters {
        self.net.pipeline_counters()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &CardConfig {
        &self.cfg
    }

    /// Message statistics accumulated so far.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// Cumulative message-plane statistics (exchange rounds, sent, local
    /// vs cross-shard deliveries, metered validation crossings).
    pub fn plane_stats(&self) -> &PlaneStats {
        self.plane.stats()
    }

    /// Number of fault-delayed plane messages parked in the deferred lane
    /// for the next exchange. With this the plane ledger closes at any
    /// instant: `sent == local + cross_shard + dropped + deferred`.
    pub fn plane_deferred_pending(&self) -> usize {
        self.plane.deferred_pending()
    }

    /// Zero the plane statistics (phase-by-phase measurement).
    pub fn reset_plane_stats(&mut self) {
        self.plane.reset_stats();
    }

    /// Arm deterministic fault injection: from the next validation round
    /// on, `plan`'s node events, partition window, and message verdicts
    /// apply. The faulted history is a pure function of `(world seed,
    /// plan)` — identical at any shard or worker count and between the
    /// tick and event drivers (see the module docs).
    ///
    /// # Panics
    /// Panics if the plan schedules an event for a node outside this
    /// network.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        let n = self.net.node_count();
        assert!(
            plan.events().iter().all(|e| (e.node as usize) < n),
            "fault plan targets a node outside the network"
        );
        self.faults = Some(FaultRuntime {
            plan,
            state: FaultState::new(n),
            round: 0,
            crashes: 0,
            rejoins: 0,
            partitions_opened: 0,
            partitions_healed: 0,
            liveness_violations: 0,
            grid_audit_violations: 0,
            sweep_counter: 0,
        });
    }

    /// Is a fault plan armed?
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The live down/partition state, when faults are armed.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref().map(|rt| &rt.state)
    }

    /// Lifecycle counters of the fault subsystem (all-zero when disabled).
    pub fn fault_report(&self) -> FaultReport {
        let mut r = FaultReport {
            retry: self.query_retry.stats().clone(),
            ..FaultReport::default()
        };
        if let Some(rt) = &self.faults {
            r.rounds_applied = rt.round;
            r.crashes = rt.crashes;
            r.rejoins = rt.rejoins;
            r.down_now = rt.state.down_count();
            r.partitions_opened = rt.partitions_opened;
            r.partitions_healed = rt.partitions_healed;
            r.partition_active = rt.state.partition_active();
            r.liveness_violations = rt.liveness_violations;
            r.grid_audit_violations = rt.grid_audit_violations;
        }
        r
    }

    /// Queries waiting in the retry queue.
    pub fn pending_query_retries(&self) -> usize {
        self.query_retry.len()
    }

    /// Execute the current fault round's scheduled events: crash/rejoin
    /// the listed nodes (a crash wipes the node's protocol state — table,
    /// backoff, held hints — and a rejoined node rebuilds through ordinary
    /// rule-5 re-selection), open or heal the partition window (sides
    /// frozen from live positions at the opening instant), and audit the
    /// grid residency of every event site (positions are untouched by
    /// radio-off faults, so any stale bucket is a pipeline bug).
    fn apply_fault_round(&mut self) {
        let per = self.per;
        let CardWorld {
            net,
            shards,
            hint_stats,
            faults,
            ..
        } = self;
        let Some(rt) = faults.as_mut() else {
            return;
        };
        let round = rt.round;
        rt.round += 1;
        let events = rt.plan.events_at(round).to_vec();
        let mut touched: Vec<NodeId> = Vec::with_capacity(events.len());
        for ev in events {
            let i = ev.node as usize;
            touched.push(NodeId::from(i));
            match ev.kind {
                NodeFaultKind::Crash => {
                    rt.state.set_down(i, true);
                    rt.crashes += 1;
                    let shard = &mut shards[i / per];
                    let k = i - shard.start;
                    shard.contacts[k].clear();
                    shard.backoff_remaining[k] = 0;
                    shard.backoff_level[k] = 0;
                    if let Some(store) = &mut shard.hints {
                        hint_stats.evicted_mobility +=
                            store.invalidate_node(NodeId::from(i)) as u64;
                    }
                }
                NodeFaultKind::Rejoin => {
                    rt.state.set_down(i, false);
                    rt.rejoins += 1;
                }
            }
        }
        if let Some(w) = rt.plan.partition().copied() {
            if round == w.start_round {
                let positions = net.positions();
                let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
                for p in positions {
                    min_x = min_x.min(p.x);
                    max_x = max_x.max(p.x);
                }
                let cut = min_x + w.fraction * (max_x - min_x);
                let sides = positions.iter().map(|p| u8::from(p.x > cut)).collect();
                rt.state.activate_partition(sides);
                rt.partitions_opened += 1;
            }
            if round == w.end_round && rt.state.partition_active() {
                rt.state.heal_partition();
                rt.partitions_healed += 1;
            }
        }
        if !touched.is_empty() {
            rt.grid_audit_violations += net.audit_grid_residency_nodes(&touched) as u64;
        }
    }

    /// Estimated live heap bytes of each shard's owned protocol state
    /// (contact tables with their stored paths, RNG streams, backoff
    /// counters, hint span) — the per-shard memory columns of the
    /// full-protocol scale tier.
    pub fn shard_memory_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                let mut b = s.contacts.len() * std::mem::size_of::<ContactTable>()
                    + s.rngs.len() * std::mem::size_of::<RngStream>()
                    + s.backoff_remaining.len() * std::mem::size_of::<u32>()
                    + s.backoff_level.len() * std::mem::size_of::<u32>();
                for t in &s.contacts {
                    b += std::mem::size_of_val(t.contacts());
                    for c in t.contacts() {
                        b += c.path.len() * std::mem::size_of::<NodeId>();
                    }
                }
                if let Some(h) = &s.hints {
                    b += h.memory_bytes();
                }
                b
            })
            .collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The contact table of one node.
    pub fn contact_table(&self, node: NodeId) -> &ContactTable {
        let s = &self.shards[node.index() / self.per];
        &s.contacts[node.index() - s.start]
    }

    /// Read view over all contact tables, indexed by node id.
    pub fn contact_tables(&self) -> TablesView<'_> {
        TablesView {
            shards: &self.shards,
            per: self.per,
            n: self.net.node_count(),
        }
    }

    /// Total live contacts across all nodes.
    pub fn total_contacts(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.contacts.iter().map(ContactTable::len).sum::<usize>())
            .sum()
    }

    /// Mean live contacts per node.
    pub fn mean_contacts(&self) -> f64 {
        let n = self.net.node_count();
        if n == 0 {
            return 0.0;
        }
        self.total_contacts() as f64 / n as f64
    }

    /// `(time, total contacts)` after each validation round.
    pub fn contacts_series(&self) -> &TimeSeries {
        &self.contacts_series
    }

    /// Aggregated maintenance outcomes.
    pub fn maintenance_totals(&self) -> &MaintenanceTotals {
        &self.maintenance
    }

    /// Is the §V route-hint cache active?
    pub fn hints_enabled(&self) -> bool {
        self.hints_on
    }

    /// Enable or disable the route-hint cache at runtime. Enabling builds
    /// an empty span store in every shard from the config's sizing knobs;
    /// disabling drops the stores entirely (the cache-off query paths
    /// never touch the subsystem, so a disabled world is bit-identical to
    /// one that never had hints).
    pub fn set_hints_enabled(&mut self, enabled: bool) {
        if enabled && !self.hints_on {
            let (spb, ttl) = (self.cfg.hint_slots_per_bucket, self.cfg.hint_ttl);
            for shard in &mut self.shards {
                shard.hints = Some(HintStore::new_span(shard.start, shard.len(), spb, ttl));
            }
            self.hints_on = true;
        } else if !enabled {
            for shard in &mut self.shards {
                shard.hints = None;
            }
            self.hints_on = false;
        }
    }

    /// Hint-subsystem counters accumulated so far (see [`HintStats`]).
    pub fn hint_stats(&self) -> &HintStats {
        &self.hint_stats
    }

    /// Reset the hint counters (phase-by-phase measurement).
    pub fn reset_hint_stats(&mut self) {
        self.hint_stats = HintStats::default();
    }

    /// Read view over the shard-owned hint spans, when enabled
    /// (observability, tests).
    pub fn hint_store(&self) -> Option<HintsView<'_>> {
        self.hints_on.then(|| HintsView {
            shards: &self.shards,
            per: self.per,
        })
    }

    /// Empty every hint span (cold-cache resets) without touching counters.
    pub fn clear_hints(&mut self) {
        for shard in &mut self.shards {
            if let Some(store) = &mut shard.hints {
                store.clear();
            }
        }
    }

    /// Evict hints held at nodes the last topology refresh dirtied.
    /// Correctness never depends on this — a surviving stale hint is
    /// caught by the probe's live contact-table check — it just keeps the
    /// `stale_contact` miss rate down under churn.
    fn evict_dirty_hints(&mut self) {
        if !self.hints_on {
            return;
        }
        let per = self.per;
        let CardWorld {
            net,
            shards,
            hint_stats,
            ..
        } = self;
        match net.dirty_report() {
            DirtyReport::All => {
                for shard in shards.iter_mut() {
                    if let Some(store) = &mut shard.hints {
                        hint_stats.evicted_mobility += store.invalidate_all() as u64;
                    }
                }
            }
            DirtyReport::Exact(dirty) => {
                for &node in dirty {
                    let shard = &mut shards[node.index() / per];
                    if let Some(store) = &mut shard.hints {
                        hint_stats.evicted_mobility += store.invalidate_node(node) as u64;
                    }
                }
            }
        }
    }

    /// Run contact selection (one pass over shuffled edge nodes, §III.C.1)
    /// for a single node, topping its table up toward NoC.
    pub fn select_contacts_for(&mut self, node: NodeId) {
        let i = node.index();
        let per = self.per;
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            ..
        } = self;
        let shard = &mut shards[i / per];
        let k = i - shard.start;
        select_contacts(
            net,
            cfg,
            node,
            &mut shard.contacts[k],
            &mut shard.rngs[k],
            stats,
            *now,
            ALL_EDGE_NODES,
            &mut shard.scratch,
        );
    }

    /// Initial contact selection for every node, fanned out over the
    /// protocol shards (see the module docs). Bit-identical to
    /// [`CardWorld::select_all_contacts_serial`].
    pub fn select_all_contacts(&mut self) {
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            ..
        } = self;
        let width = stats.bucket_width();
        let at = *now;
        let deltas = parallel_shard_map(shards, |_, shard| {
            let mut delta = MsgStats::new(width);
            for k in 0..shard.contacts.len() {
                select_contacts(
                    net,
                    cfg,
                    NodeId::from(shard.start + k),
                    &mut shard.contacts[k],
                    &mut shard.rngs[k],
                    &mut delta,
                    at,
                    ALL_EDGE_NODES,
                    &mut shard.scratch,
                );
            }
            delta
        });
        for delta in &deltas {
            stats.merge(delta);
        }
    }

    /// Serial reference for [`CardWorld::select_all_contacts`]: the same
    /// per-node work on the caller's thread, one node at a time. Kept (like
    /// `Network::refresh_full`) as the equivalence anchor for tests and the
    /// `select_all_contacts/*` benches.
    pub fn select_all_contacts_serial(&mut self) {
        for node in NodeId::all(self.net.node_count()) {
            self.select_contacts_for(node);
        }
    }

    /// One validation round for every node: validate paths (healing with
    /// local recovery), drop rule-4 violators, then — per §III.C.3 rule 5 —
    /// re-select toward NoC. The sweep fans out over the protocol shards;
    /// [`CardWorld::validation_round_serial`] is the bit-identical serial
    /// reference. Span-boundary crossings of the validated paths are
    /// metered into [`PlaneStats::metered_crossings`].
    ///
    /// Re-selection is throttled twice, which is what keeps steady-state
    /// overhead at the per-node magnitudes of Figs 10–13 (the paper's
    /// steady state is essentially validation-only):
    /// * at most `cfg.selection_walks_per_round` CSQs per node per round
    ///   ("one at a time", §III.C.1);
    /// * exponential backoff after fruitless rounds — a node whose
    ///   selection attempt yields nothing skips `2^level − 1` rounds
    ///   (level capped at 5), resetting on any success. Saturated nodes
    ///   (NoC above the annulus capacity) therefore go quiet instead of
    ///   re-sweeping the region every period.
    pub fn validation_round(&mut self) {
        if self.faults.is_some() {
            self.validation_round_faulted(false);
            return;
        }
        let per = self.per;
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            maintenance,
            shards,
            plane,
            ..
        } = self;
        let width = stats.bucket_width();
        let at = *now;
        let deltas = parallel_shard_map(shards, |_, shard| {
            Self::validate_span(net, cfg, shard, at, width, per)
        });
        let mut crossings = 0u64;
        for delta in &deltas {
            stats.merge(&delta.stats);
            maintenance.merge(&delta.maintenance);
            crossings += delta.crossings;
        }
        plane.stats_mut().metered_crossings += crossings;
        self.advance_hint_epochs();
        self.contacts_series
            .push(self.now, self.total_contacts() as f64);
    }

    /// Serial reference for [`CardWorld::validation_round`]: the same
    /// validate-then-reselect pass over the shards in order on the
    /// caller's thread.
    pub fn validation_round_serial(&mut self) {
        if self.faults.is_some() {
            self.validation_round_faulted(true);
            return;
        }
        let per = self.per;
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            maintenance,
            shards,
            plane,
            ..
        } = self;
        let width = stats.bucket_width();
        let at = *now;
        for shard in shards.iter_mut() {
            let delta = Self::validate_span(net, cfg, shard, at, width, per);
            stats.merge(&delta.stats);
            maintenance.merge(&delta.maintenance);
            plane.stats_mut().metered_crossings += delta.crossings;
        }
        self.advance_hint_epochs();
        self.contacts_series
            .push(self.now, self.total_contacts() as f64);
    }

    /// A validation round under an armed fault plan: apply the round's
    /// fault events, sweep every shard through the fault-aware span body
    /// ([`CardWorld::validate_span_faulted`] — serial or fanned out, bit
    /// for bit the same), then re-run the due query retries. Fused here so
    /// every driver sees one fault history.
    fn validation_round_faulted(&mut self, serial: bool) {
        self.apply_fault_round();
        let per = self.per;
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            maintenance,
            shards,
            plane,
            faults,
            ..
        } = self;
        let rt = faults.as_ref().expect("faulted round without a runtime");
        let plan = &rt.plan;
        let state = &rt.state;
        let round = rt.round - 1;
        let width = stats.bucket_width();
        let at = *now;
        let mut crossings = 0u64;
        let mut liveness = 0u64;
        let mut fold = |delta: &ShardDelta| {
            stats.merge(&delta.stats);
            maintenance.merge(&delta.maintenance);
            crossings += delta.crossings;
            liveness += delta.liveness_violations;
        };
        if serial {
            for shard in shards.iter_mut() {
                let delta = Self::validate_span_faulted(
                    net, cfg, shard, at, width, per, plan, state, round,
                );
                fold(&delta);
            }
        } else {
            let deltas = parallel_shard_map(shards, |_, shard| {
                Self::validate_span_faulted(net, cfg, shard, at, width, per, plan, state, round)
            });
            for delta in &deltas {
                fold(delta);
            }
        }
        plane.stats_mut().metered_crossings += crossings;
        self.faults
            .as_mut()
            .expect("faulted round without a runtime")
            .liveness_violations += liveness;
        self.advance_hint_epochs();
        self.contacts_series
            .push(self.now, self.total_contacts() as f64);
        self.drain_query_retries();
    }

    /// Advance the freshness epoch of every hint span (all spans move
    /// together; the epoch is global).
    fn advance_hint_epochs(&mut self) {
        if !self.hints_on {
            return;
        }
        for shard in &mut self.shards {
            if let Some(store) = &mut shard.hints {
                store.advance_epoch();
            }
        }
    }

    /// The per-shard body of a validation round: validate every node of the
    /// span, then (throttled) re-select. Touches only shard-owned state and
    /// the immutable network; emits its message/maintenance counters and
    /// metered path crossings as a delta for in-order merging.
    fn validate_span(
        net: &Network,
        cfg: &CardConfig,
        shard: &mut ProtocolShard,
        at: SimTime,
        bucket_width: SimDuration,
        per: usize,
    ) -> ShardDelta {
        let mut delta = ShardDelta {
            stats: MsgStats::new(bucket_width),
            maintenance: MaintenanceTotals::default(),
            crossings: 0,
            liveness_violations: 0,
        };
        for k in 0..shard.contacts.len() {
            let node = NodeId::from(shard.start + k);
            // Meter the validation traffic this node is about to send down
            // its stored paths: every span-boundary crossing is a message
            // the plane would carry if validation were materialized.
            for c in shard.contacts[k].contacts() {
                delta.crossings += path_shard_crossings(&c.path, per);
            }
            let report =
                validate_contacts(net, cfg, node, &mut shard.contacts[k], &mut delta.stats, at);
            delta.maintenance.absorb(&report);
            if shard.contacts[k].len() >= cfg.target_contacts {
                shard.backoff_level[k] = 0;
                shard.backoff_remaining[k] = 0;
                continue;
            }
            if shard.backoff_remaining[k] > 0 {
                shard.backoff_remaining[k] -= 1;
                continue;
            }
            let before = shard.contacts[k].len();
            select_contacts(
                net,
                cfg,
                node,
                &mut shard.contacts[k],
                &mut shard.rngs[k],
                &mut delta.stats,
                at,
                cfg.selection_walks_per_round,
                &mut shard.scratch,
            );
            if shard.contacts[k].len() > before {
                shard.backoff_level[k] = 0;
                shard.backoff_remaining[k] = 0;
            } else {
                shard.backoff_level[k] = (shard.backoff_level[k] + 1).min(MAX_BACKOFF_LEVEL);
                shard.backoff_remaining[k] = (1u32 << shard.backoff_level[k]) - 1;
            }
        }
        delta
    }

    /// The fault-aware span body of a validation round. Per up node:
    /// tombstone confirmed-dead contacts (evicted now, barred from
    /// re-selection until the TTL expires), hold out contacts inside a
    /// retry window or whose probe the plan loses this round (unacked
    /// probes extend the window; past `cfg.validation_retry_cap` the
    /// contact is dropped), validate the rest with crashed/partitioned
    /// hops vetoed (including local-recovery splices), then re-select
    /// under the same throttles as the calm path. Crashed nodes send
    /// nothing and maintain nothing. The in-run liveness check counts any
    /// tombstone observed past its TTL before the round's decay.
    #[allow(clippy::too_many_arguments)]
    fn validate_span_faulted(
        net: &Network,
        cfg: &CardConfig,
        shard: &mut ProtocolShard,
        at: SimTime,
        bucket_width: SimDuration,
        per: usize,
        plan: &FaultPlan,
        state: &FaultState,
        round: u32,
    ) -> ShardDelta {
        let mut delta = ShardDelta {
            stats: MsgStats::new(bucket_width),
            maintenance: MaintenanceTotals::default(),
            crossings: 0,
            liveness_violations: 0,
        };
        let allowed = |a: NodeId, b: NodeId| state.link_allowed(a.index(), b.index());
        let mut ids: Vec<NodeId> = Vec::new();
        let mut held: Vec<crate::contact::Contact> = Vec::new();
        for k in 0..shard.contacts.len() {
            let node = NodeId::from(shard.start + k);
            if state.is_down(node.index()) {
                // Radio off: no probes, no selection; the table was wiped
                // at the crash and stays empty until rejoin.
                continue;
            }
            let table = &mut shard.contacts[k];
            for c in table.contacts() {
                delta.crossings += path_shard_crossings(&c.path, per);
            }
            // Confirmed-dead contacts: tombstoned up front so neither
            // validation nor this round's re-selection resurrects them.
            ids.clear();
            ids.extend(table.contacts().iter().map(|c| c.id));
            for &c in &ids {
                if state.is_down(c.index()) {
                    table.tombstone(c, cfg.tombstone_ttl);
                    delta.maintenance.lost += 1;
                }
            }
            // Retry windows: a contact mid-window skips this round's
            // probe; a probe the plan loses goes unacked — its hops are
            // still charged, the window doubles, and past the cap the
            // contact is dropped.
            ids.clear();
            ids.extend(table.contacts().iter().map(|c| c.id));
            held.clear();
            for &c in &ids {
                if table.retry_skip(c) {
                    let cs = table.contacts_mut();
                    let pos = cs
                        .iter()
                        .position(|x| x.id == c)
                        .expect("retrying contact present");
                    held.push(cs.remove(pos));
                    continue;
                }
                if !plan.validation_lost(node.index() as u32, c.index() as u32, round) {
                    continue;
                }
                let cs = table.contacts_mut();
                let pos = cs
                    .iter()
                    .position(|x| x.id == c)
                    .expect("probed contact present");
                let entry = cs.remove(pos);
                delta
                    .stats
                    .record_n(at, MsgKind::Validation, entry.hops() as u64);
                let level = table.note_unacked(c);
                if level > cfg.validation_retry_cap {
                    table.clear_retry(c);
                    delta.maintenance.lost += 1;
                } else {
                    held.push(entry);
                }
            }
            let report =
                validate_contacts_filtered(net, cfg, node, table, &mut delta.stats, at, &allowed);
            delta.maintenance.absorb(&report);
            // An acked validation resets the contact's retry state.
            ids.clear();
            ids.extend(table.contacts().iter().map(|c| c.id));
            for &c in &ids {
                table.clear_retry(c);
            }
            // Re-admit the held-out contacts, windows intact.
            table.contacts_mut().append(&mut held);
            // Liveness: no tombstone may be observed past its TTL.
            if table.max_tombstone_ttl() > cfg.tombstone_ttl {
                delta.liveness_violations += 1;
            }
            table.decay_tombstones();
            if table.len() >= cfg.target_contacts {
                shard.backoff_level[k] = 0;
                shard.backoff_remaining[k] = 0;
                continue;
            }
            if shard.backoff_remaining[k] > 0 {
                shard.backoff_remaining[k] -= 1;
                continue;
            }
            let before = shard.contacts[k].len();
            select_contacts(
                net,
                cfg,
                node,
                &mut shard.contacts[k],
                &mut shard.rngs[k],
                &mut delta.stats,
                at,
                cfg.selection_walks_per_round,
                &mut shard.scratch,
            );
            if shard.contacts[k].len() > before {
                shard.backoff_level[k] = 0;
                shard.backoff_remaining[k] = 0;
            } else {
                shard.backoff_level[k] = (shard.backoff_level[k] + 1).min(MAX_BACKOFF_LEVEL);
                shard.backoff_remaining[k] = (1u32 << shard.backoff_level[k]) - 1;
            }
        }
        delta
    }

    /// Issue a resource-discovery query (§III.C.4) from `source` for
    /// `target`, escalating depth up to `cfg.depth`. Runs allocation-free
    /// on the world's first query scratch; batches should prefer
    /// [`CardWorld::query_all`]. With the route-hint cache enabled, the
    /// cache is consulted first and deposits from a resolved query are
    /// applied to their owner shards immediately (live queries warm the
    /// very next call; this host-local apply is the plane's one-round
    /// degenerate case — a single query's deposits drain in log order).
    pub fn query(&mut self, source: NodeId, target: NodeId) -> QueryOutcome {
        if self.faults.is_some() {
            let out = self.query_faulted(source, target);
            if !out.found {
                self.query_retry.schedule(source, target);
            }
            return out;
        }
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            hints_on,
            hint_stats,
            hint_deposits,
            ..
        } = self;
        if *hints_on {
            hint_deposits.clear();
            let out = {
                let tables = TablesView {
                    shards: &*shards,
                    per,
                    n,
                };
                let hview = HintsView {
                    shards: &*shards,
                    per,
                };
                let mut ctx = HintContext {
                    store: hview,
                    stats: hint_stats,
                    deposits: hint_deposits,
                };
                dsq_query_hinted(
                    net,
                    tables,
                    &mut ctx,
                    source,
                    target,
                    cfg.depth,
                    stats,
                    *now,
                    &mut query_scratch[0],
                )
            };
            Self::apply_deposits_to_shards(shards, per, hint_stats, hint_deposits);
            out
        } else {
            let tables = TablesView {
                shards: &*shards,
                per,
                n,
            };
            dsq_query(
                net,
                tables,
                source,
                target,
                cfg.depth,
                stats,
                *now,
                &mut query_scratch[0],
            )
        }
    }

    /// One faulted query, without retry scheduling (the retry drain calls
    /// this directly so a re-run never re-queues itself —
    /// [`QueryRetryQueue::report`] owns the requeue decision). Crashed
    /// endpoints fail fast; otherwise the walk runs with crashed relays
    /// and cross-partition edges vetoed, falling back from a hint whose
    /// next hop is down to the plain escalation. Messages are recorded
    /// exactly as the calm sweeps record them (Dsq/DsqReply from the
    /// outcome).
    fn query_faulted(&mut self, source: NodeId, target: NodeId) -> QueryOutcome {
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            hints_on,
            hint_stats,
            hint_deposits,
            faults,
            ..
        } = self;
        let rt = faults.as_ref().expect("faulted query without a runtime");
        if rt.state.is_down(source.index()) || rt.state.is_down(target.index()) {
            return QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            };
        }
        let filter = QueryFaultFilter {
            down: rt.state.down_mask(),
            sides: rt.state.sides(),
        };
        let out = if *hints_on {
            hint_deposits.clear();
            let out = {
                let tables = TablesView {
                    shards: &*shards,
                    per,
                    n,
                };
                let hview = HintsView {
                    shards: &*shards,
                    per,
                };
                let mut ctx = HintContext {
                    store: hview,
                    stats: hint_stats,
                    deposits: hint_deposits,
                };
                dsq_query_hinted_faulted_unrecorded(
                    net,
                    tables,
                    &mut ctx,
                    source,
                    target,
                    cfg.depth,
                    &mut query_scratch[0],
                    &filter,
                )
            };
            Self::apply_deposits_to_shards(shards, per, hint_stats, hint_deposits);
            out
        } else {
            let tables = TablesView {
                shards: &*shards,
                per,
                n,
            };
            dsq_query_faulted_unrecorded(
                net,
                tables,
                source,
                target,
                cfg.depth,
                &mut query_scratch[0],
                &filter,
            )
        };
        stats.record_n(*now, MsgKind::Dsq, out.query_msgs);
        stats.record_n(*now, MsgKind::DsqReply, out.reply_msgs);
        out
    }

    /// Advance the retry queue one round and re-run the due queries,
    /// feeding outcomes back (recovered / requeued with doubled backoff /
    /// abandoned past the cap).
    fn drain_query_retries(&mut self) {
        if self.query_retry.is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.retry_due);
        self.query_retry.tick(&mut due);
        for &(source, target, attempt) in &due {
            let out = self.query_faulted(source, target);
            self.query_retry.report(source, target, attempt, out.found);
        }
        due.clear();
        self.retry_due = due;
    }

    /// Issue an anycast resource query (§III.C.4 with a resource target)
    /// from `source`, escalating up to `cfg.depth` and consulting the
    /// route-hint cache when enabled (hints are keyed by the resource, so
    /// any replica's answer warms later queries for it).
    pub fn query_resource(
        &mut self,
        registry: &ResourceRegistry,
        source: NodeId,
        resource: ResourceId,
    ) -> QueryOutcome {
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            hints_on,
            hint_stats,
            hint_deposits,
            ..
        } = self;
        if *hints_on {
            hint_deposits.clear();
            let out = {
                let tables = TablesView {
                    shards: &*shards,
                    per,
                    n,
                };
                let hview = HintsView {
                    shards: &*shards,
                    per,
                };
                let mut ctx = HintContext {
                    store: hview,
                    stats: hint_stats,
                    deposits: hint_deposits,
                };
                resource_query_hinted(
                    net,
                    tables,
                    registry,
                    &mut ctx,
                    source,
                    resource,
                    cfg.depth,
                    stats,
                    *now,
                    &mut query_scratch[0],
                )
            };
            Self::apply_deposits_to_shards(shards, per, hint_stats, hint_deposits);
            out
        } else {
            let tables = TablesView {
                shards: &*shards,
                per,
                n,
            };
            resource_query(
                net,
                tables,
                registry,
                source,
                resource,
                cfg.depth,
                stats,
                *now,
                &mut query_scratch[0],
            )
        }
    }

    /// Apply a deposit log to the holders' owner shards in log order,
    /// counting writes and LRU evictions.
    fn apply_deposits_to_shards(
        shards: &mut [ProtocolShard],
        per: usize,
        stats: &mut HintStats,
        deposits: &[HintDeposit],
    ) {
        for d in deposits {
            let store = shards[d.holder.index() / per]
                .hints
                .as_mut()
                .expect("deposit into a world without hint stores");
            let out = store.deposit(d.holder, d.key, d.next_hop, d.depth);
            stats.deposits += 1;
            if out.evicted_live {
                stats.evicted_lru += 1;
            }
        }
    }

    /// Run a batch of queries — one DSQ per `(source, target)` pair,
    /// escalating up to `cfg.depth` — fanned out over the protocol shards
    /// (the *pair list* is sharded; see the module docs), returning the
    /// outcomes in pair order. With the route-hint cache disabled this is
    /// exactly [`CardWorld::query_all_cache_off`]; with it enabled the
    /// sweep consults views *frozen* for the whole parallel phase and
    /// routes the shards' deposit logs through the message plane to their
    /// owner shards afterwards, so either way results and statistics are
    /// bit-identical at any worker or shard count (the cache-off path
    /// additionally equals [`CardWorld::query_all_serial`]).
    pub fn query_all(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        let mut out = Vec::new();
        self.query_all_into(pairs, &mut out);
        out
    }

    /// [`CardWorld::query_all`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so repeated sweeps (scale tiers, benches)
    /// reuse one allocation instead of building a fresh `Vec` per sweep.
    pub fn query_all_into(&mut self, pairs: &[(NodeId, NodeId)], out: &mut Vec<QueryOutcome>) {
        out.clear();
        out.resize(
            pairs.len(),
            QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            },
        );
        if self.hints_on {
            self.sweep_hinted(pairs, out);
        } else {
            self.sweep_cache_off(pairs, out);
        }
        // Under faults, failed sweep queries enter the retry queue in pair
        // order — the same sequence a loop of [`CardWorld::query`] calls
        // would schedule (`schedule` dedups outstanding pairs).
        if self.faults.is_some() {
            for (&(s, t), o) in pairs.iter().zip(out.iter()) {
                if !o.found {
                    self.query_retry.schedule(s, t);
                }
            }
        }
    }

    /// The retained cache-off sweep — the §V baseline the hinted sweep is
    /// measured against, and the path [`CardWorld::query_all`] takes when
    /// hints are disabled. Message counters land in per-shard [`MsgStats`]
    /// deltas merged in shard order, so results and statistics are
    /// bit-identical to [`CardWorld::query_all_serial`] at any worker or
    /// shard count. Never touches the hint store, even when one is
    /// enabled.
    pub fn query_all_cache_off(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        let mut out = vec![
            QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            };
            pairs.len()
        ];
        self.sweep_cache_off(pairs, &mut out);
        out
    }

    /// Shared body of the cache-off pair sweep: outcomes into `out`
    /// (already sized), counters merged in shard order.
    fn sweep_cache_off(&mut self, pairs: &[(NodeId, NodeId)], out: &mut [QueryOutcome]) {
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            faults,
            ..
        } = self;
        let tables = TablesView {
            shards: &*shards,
            per,
            n,
        };
        let filter = faults.as_ref().map(|rt| QueryFaultFilter {
            down: rt.state.down_mask(),
            sides: rt.state.sides(),
        });
        let at = *now;
        let depth = cfg.depth;
        let spans = shard_spans(pairs.len(), query_scratch.len());
        // Each shard owns its span of the pair list, the matching span of
        // the output buffer (written in place — no per-shard collection),
        // and one walk scratch.
        let mut work = Vec::with_capacity(spans.len());
        let mut out_rest: &mut [QueryOutcome] = out;
        let mut scratches = query_scratch.iter_mut();
        for span in spans {
            let (slots, rest) = out_rest.split_at_mut(span.end - span.start);
            out_rest = rest;
            work.push((
                &pairs[span],
                slots,
                scratches.next().expect("span count exceeds scratch count"),
            ));
        }
        let deltas = parallel_shard_map(&mut work, |_, (pairs, slots, scratch)| {
            // The shard's message delta: every query lands at the same
            // instant, so two counters recorded in bulk afterwards produce
            // buckets bit-identical to per-query recording.
            let mut dsq = 0u64;
            let mut reply = 0u64;
            for (slot, &(s, t)) in slots.iter_mut().zip(pairs.iter()) {
                let o = match &filter {
                    Some(f) => Self::pair_query_faulted(net, tables, s, t, depth, scratch, f),
                    None => dsq_query_unrecorded(net, tables, s, t, depth, scratch),
                };
                dsq += o.query_msgs;
                reply += o.reply_msgs;
                *slot = o;
            }
            (dsq, reply)
        });
        for (dsq, reply) in deltas {
            stats.record_n(at, MsgKind::Dsq, dsq);
            stats.record_n(at, MsgKind::DsqReply, reply);
        }
    }

    /// One cache-off pair of a faulted sweep: crashed endpoints fail fast
    /// (no messages — nobody to ask, nobody to answer), otherwise the walk
    /// runs with crashed/partitioned edges vetoed.
    fn pair_query_faulted(
        net: &Network,
        tables: TablesView<'_>,
        source: NodeId,
        target: NodeId,
        depth: u16,
        scratch: &mut QueryScratch,
        filter: &QueryFaultFilter<'_>,
    ) -> QueryOutcome {
        if filter.down[source.index()] || filter.down[target.index()] {
            return QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            };
        }
        dsq_query_faulted_unrecorded(net, tables, source, target, depth, scratch, filter)
    }

    /// The hinted sharded sweep behind [`CardWorld::query_all`]. The
    /// parallel phase reads table and hint views *frozen* for the whole
    /// sweep (every query sees the same cache — deposits become visible
    /// to the *next* sweep, exactly as in a batch of concurrently
    /// in-flight queries) while logging deposits into per-source-shard
    /// buffers (reused across sweeps). Counter deltas merge in shard
    /// order; deposits are then routed through the message plane to each
    /// holder's owner shard and applied in a parallel drain phase.
    ///
    /// Delivery order makes the drain deterministic: a mailbox is sorted
    /// by `(source shard, send sequence)` and sends happen in pair order
    /// within each source shard, so the deposit sequence each holder
    /// observes is the global pair order restricted to that holder —
    /// bit-identical to the serial one-query-at-a-time reference at any
    /// worker or shard count (pinned by `tests/hint_cache.rs` and
    /// `tests/message_plane.rs`).
    fn sweep_hinted(&mut self, pairs: &[(NodeId, NodeId)], out: &mut [QueryOutcome]) {
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            hint_stats,
            sweep_deposits,
            plane,
            faults,
            ..
        } = self;
        let at = *now;
        let depth = cfg.depth;
        let spans = shard_spans(pairs.len(), query_scratch.len());
        let deltas = {
            let tables = TablesView {
                shards: &*shards,
                per,
                n,
            };
            let hview = HintsView {
                shards: &*shards,
                per,
            };
            let filter = faults.as_ref().map(|rt| QueryFaultFilter {
                down: rt.state.down_mask(),
                sides: rt.state.sides(),
            });
            let mut work = Vec::with_capacity(spans.len());
            let mut out_rest: &mut [QueryOutcome] = out;
            let mut scratches = query_scratch.iter_mut();
            let mut dep_bufs = sweep_deposits.iter_mut();
            for span in spans {
                let (slots, rest) = out_rest.split_at_mut(span.end - span.start);
                out_rest = rest;
                work.push((
                    &pairs[span],
                    slots,
                    scratches.next().expect("span count exceeds scratch count"),
                    dep_bufs.next().expect("span count exceeds deposit buffers"),
                ));
            }
            parallel_shard_map(&mut work, |_, (pairs, slots, scratch, deposits)| {
                deposits.clear();
                let mut dsq = 0u64;
                let mut reply = 0u64;
                let mut shard_stats = HintStats::default();
                for (slot, &(s, t)) in slots.iter_mut().zip(pairs.iter()) {
                    let mut ctx = HintContext {
                        store: hview,
                        stats: &mut shard_stats,
                        deposits,
                    };
                    let o = match &filter {
                        Some(f) if f.down[s.index()] || f.down[t.index()] => QueryOutcome {
                            found: false,
                            depth_used: 0,
                            query_msgs: 0,
                            reply_msgs: 0,
                        },
                        Some(f) => dsq_query_hinted_faulted_unrecorded(
                            net, tables, &mut ctx, s, t, depth, scratch, f,
                        ),
                        None => {
                            dsq_query_hinted_unrecorded(net, tables, &mut ctx, s, t, depth, scratch)
                        }
                    };
                    dsq += o.query_msgs;
                    reply += o.reply_msgs;
                    *slot = o;
                }
                (dsq, reply, shard_stats)
            })
        };
        for (dsq, reply, shard_stats) in &deltas {
            stats.record_n(at, MsgKind::Dsq, *dsq);
            stats.record_n(at, MsgKind::DsqReply, *reply);
            hint_stats.merge(shard_stats);
        }
        // Route every logged deposit to its holder's owner shard. Sends
        // happen in pair order within each source shard, which (with the
        // plane's (dst, src, seq) delivery order) fixes the per-holder
        // apply sequence to the global pair order restricted to the holder.
        {
            let (outboxes, _) = plane.split_mut();
            for (src, deposits) in sweep_deposits.iter_mut().enumerate() {
                for d in deposits.drain(..) {
                    outboxes[src].send(d.holder.index() / per, ProtocolMsg::Deposit(d));
                }
            }
        }
        // A lossy fault plane judges each deposit by its *content* (plus a
        // shard-invariant sweep salt, so identical payloads in different
        // sweeps draw independent verdicts) — never by transport
        // coordinates — keeping faulted deliveries bit-identical at any
        // shard count. Delayed deposits park in the plane's deferred lane
        // and land at the next exchange.
        match faults.as_mut().filter(|rt| rt.plan.lossy()) {
            Some(rt) => {
                rt.sweep_counter += 1;
                let sweep = rt.sweep_counter;
                let plan = &rt.plan;
                plane.exchange_faulted(|_, _, msg| {
                    let ProtocolMsg::Deposit(d) = msg else {
                        return FaultVerdict::Deliver;
                    };
                    plan.message_verdict(FaultPlan::salted_key(&[
                        d.holder.index() as u64,
                        d.next_hop.index() as u64,
                        d.depth as u64,
                        d.key.bits(),
                        sweep,
                    ]))
                });
            }
            None => {
                plane.exchange();
            }
        }
        // Deterministic drain: each shard applies its own mailbox to its
        // own span store (no cross-shard writes), counters merged in
        // shard order.
        let (_, mailboxes) = plane.split_mut();
        let mut drains: Vec<_> = shards.iter_mut().zip(mailboxes.iter_mut()).collect();
        let applied = parallel_shard_map(&mut drains, |_, (shard, mailbox)| {
            let mut deposits = 0u64;
            let mut evicted = 0u64;
            let store = shard
                .hints
                .as_mut()
                .expect("hinted sweep without span stores");
            for (_src, msg) in mailbox.drain() {
                let ProtocolMsg::Deposit(d) = msg else {
                    unreachable!("hinted sweep routes only deposits");
                };
                let out = store.deposit(d.holder, d.key, d.next_hop, d.depth);
                deposits += 1;
                if out.evicted_live {
                    evicted += 1;
                }
            }
            (deposits, evicted)
        });
        for (deposits, evicted) in applied {
            hint_stats.deposits += deposits;
            hint_stats.evicted_lru += evicted;
        }
    }

    /// Deliver and apply any hint deposits still parked in the plane's
    /// deferred lane (a lossy fault plane delays deposits by one
    /// exchange; normally the next hinted sweep drains them). The
    /// plane-routed query sweep shares the plane, so it flushes first to
    /// keep its own request/reply rounds homogeneous. Deposits landing
    /// after the hint cache was disabled are dropped — the store they
    /// were bound for no longer exists.
    fn flush_deferred_deposits(&mut self) {
        if self.plane.deferred_pending() == 0 {
            return;
        }
        self.plane.exchange();
        let CardWorld {
            shards,
            plane,
            hint_stats,
            ..
        } = self;
        let (_, mailboxes) = plane.split_mut();
        for (shard, mailbox) in shards.iter_mut().zip(mailboxes.iter_mut()) {
            for (_src, msg) in mailbox.drain() {
                let ProtocolMsg::Deposit(d) = msg else {
                    unreachable!("the deferred lane carries only deposits");
                };
                if let Some(store) = shard.hints.as_mut() {
                    let out = store.deposit(d.holder, d.key, d.next_hop, d.depth);
                    hint_stats.deposits += 1;
                    if out.evicted_live {
                        hint_stats.evicted_lru += 1;
                    }
                }
            }
        }
    }

    /// Cache-off sweep with *plane-routed* frontier expansion: instead of
    /// reading remote contact tables directly, each escalation depth asks
    /// the owner shard of every frontier node for its contact list
    /// (`ProtocolMsg::Expand`) and integrates the replies
    /// (`ProtocolMsg::Contacts`) — two exchange rounds per depth. This
    /// is the fully message-mediated form of the protocol walk; outcomes
    /// and statistics are bit-identical to [`CardWorld::query_all_cache_off`]
    /// (and hence [`CardWorld::query_all_serial`]) at any shard count,
    /// pinned by `tests/message_plane.rs`. The direct-read sweep stays the
    /// fast path; this one exists to validate the plane's ordering
    /// contract and to measure true cross-shard query traffic.
    pub fn query_all_plane(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        self.flush_deferred_deposits();
        let per = self.per;
        let k = self.shards.len();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            plane,
            ..
        } = self;
        let at = *now;
        let depth_max = cfg.depth;
        let tables = net.tables();
        let mut queries: Vec<PlaneQuery> = pairs
            .iter()
            .map(|&(s, t)| {
                let mut q = PlaneQuery {
                    target: t,
                    frontier: vec![(s, 0)],
                    next: Vec::new(),
                    seen: vec![s],
                    walked: 0,
                    query_msgs: 0,
                    done: None,
                };
                if tables.of(s).contains(t) {
                    q.done = Some(QueryOutcome {
                        found: true,
                        depth_used: 0,
                        query_msgs: 0,
                        reply_msgs: 0,
                    });
                }
                q
            })
            .collect();
        let spans = shard_spans(pairs.len(), k);
        for depth in 1..=depth_max {
            if queries.iter().all(|q| q.done.is_some()) {
                break;
            }
            // Request phase: every live query re-sends down its walked
            // levels (the serial escalation's re-send charge, applied even
            // when the frontier is empty) and asks the owner shard of each
            // frontier node for its table.
            {
                let (outboxes, _) = plane.split_mut();
                for (p, span) in spans.iter().enumerate() {
                    for qi in span.clone() {
                        let q = &mut queries[qi];
                        if q.done.is_some() {
                            continue;
                        }
                        q.query_msgs += q.walked;
                        for &(node, _) in &q.frontier {
                            outboxes[p].send(
                                node.index() / per,
                                ProtocolMsg::Expand { q: qi as u32, node },
                            );
                        }
                    }
                }
            }
            plane.exchange();
            // Serve phase: each shard answers the expansion requests in
            // its mailbox from its own tables, in delivery order.
            {
                let (outboxes, mailboxes) = plane.split_mut();
                for (s, (shard, mailbox)) in shards.iter().zip(mailboxes.iter_mut()).enumerate() {
                    for (src, msg) in mailbox.drain() {
                        let ProtocolMsg::Expand { q, node } = msg else {
                            unreachable!("request round carries only expansions");
                        };
                        let table = &shard.contacts[node.index() - shard.start];
                        let list = table.contacts().iter().map(|c| (c.id, c.hops())).collect();
                        outboxes[s].send(src as usize, ProtocolMsg::Contacts { q, node, list });
                    }
                }
            }
            plane.exchange();
            // Integrate phase: replies in a mailbox are sorted by serving
            // shard; within one serving shard they appear in the order the
            // requests were delivered there — i.e. in this pair shard's
            // send order. A cursor per serving shard therefore re-aligns
            // replies with frontier entries exactly.
            for (p, span) in spans.iter().enumerate() {
                let msgs = plane.mailbox(p).msgs();
                let mut cursors = vec![usize::MAX; k];
                for (i, (src, _)) in msgs.iter().enumerate() {
                    let src = *src as usize;
                    if cursors[src] == usize::MAX {
                        cursors[src] = i;
                    }
                }
                for qi in span.clone() {
                    let q = &mut queries[qi];
                    if q.done.is_some() {
                        continue;
                    }
                    let mut answered = false;
                    let mut level_msgs = 0u64;
                    q.next.clear();
                    for fi in 0..q.frontier.len() {
                        let (node, dist) = q.frontier[fi];
                        let src = node.index() / per;
                        let cur = cursors[src];
                        cursors[src] = cur + 1;
                        let (_, msg) = &msgs[cur];
                        let ProtocolMsg::Contacts {
                            q: rq,
                            node: rnode,
                            list,
                        } = msg
                        else {
                            unreachable!("reply round carries only contact lists");
                        };
                        debug_assert_eq!(*rq, qi as u32, "reply misaligned with query");
                        debug_assert_eq!(*rnode, node, "reply misaligned with frontier");
                        if answered {
                            // Mid-level abort: the answer was found earlier
                            // this level; later replies are consumed (the
                            // cursor must advance) but never charged —
                            // exactly the serial walk's abort semantics.
                            continue;
                        }
                        for &(c, hops) in list {
                            if q.seen.contains(&c) {
                                continue;
                            }
                            q.seen.push(c);
                            let at_contact = dist + hops as u64;
                            q.query_msgs += hops as u64;
                            level_msgs += hops as u64;
                            if tables.of(c).contains(q.target) {
                                q.done = Some(QueryOutcome {
                                    found: true,
                                    depth_used: depth,
                                    query_msgs: q.query_msgs,
                                    reply_msgs: at_contact,
                                });
                                answered = true;
                                break;
                            }
                            q.next.push((c, at_contact));
                        }
                    }
                    if !answered {
                        std::mem::swap(&mut q.frontier, &mut q.next);
                        q.walked += level_msgs;
                    }
                }
            }
        }
        // Per-pair-shard counter deltas, recorded in shard order — the
        // same bulk recording the direct-read sweep performs.
        let out: Vec<QueryOutcome> = queries
            .into_iter()
            .map(|q| {
                q.done.unwrap_or(QueryOutcome {
                    found: false,
                    depth_used: depth_max,
                    query_msgs: q.query_msgs,
                    reply_msgs: 0,
                })
            })
            .collect();
        for span in &spans {
            let mut dsq = 0u64;
            let mut reply = 0u64;
            for o in &out[span.clone()] {
                dsq += o.query_msgs;
                reply += o.reply_msgs;
            }
            stats.record_n(at, MsgKind::Dsq, dsq);
            stats.record_n(at, MsgKind::DsqReply, reply);
        }
        out
    }

    /// Serial reference for [`CardWorld::query_all`]: the same queries one
    /// at a time on the caller's thread, recording straight into the
    /// world's statistics. Kept (like the `*_serial` protocol sweeps) as
    /// the equivalence anchor for `tests/query_engine.rs` and the
    /// `query_sweep/*` benches.
    pub fn query_all_serial(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    /// Reachability distribution at contact depth `depth` (Figs 5–9).
    pub fn reachability_summary(&self, depth: u16) -> ReachabilitySummary {
        ReachabilitySummary::compute(&self.net, self.contact_tables(), depth)
    }

    /// Run the mobile protocol loop for `duration`: mobility ticks every
    /// `cfg.mobility_tick`, validation rounds every `cfg.validation_period`
    /// (offset by 1 µs so coincident mobility updates apply first).
    ///
    /// Virtual time (`now()`), statistics and the contacts series all
    /// advance; calling `run_mobile` again continues the same timeline.
    pub fn run_mobile(&mut self, model: &mut dyn MobilityModel, duration: SimDuration) {
        let base = self.now;
        let mut engine: Engine<SimEvent> = Engine::with_horizon(SimTime::ZERO + duration);
        if !model.is_static() {
            engine.schedule_at(
                SimTime::ZERO + self.cfg.mobility_tick,
                SimEvent::MobilityTick,
            );
        }
        // First round effectively at t=0 (selection starts immediately),
        // then every period; the 1 µs offset makes coincident mobility
        // ticks apply before the round.
        engine.schedule_at(
            SimTime::ZERO + SimDuration::from_micros(1),
            SimEvent::ValidationRound,
        );

        while let Some((t, ev)) = engine.next_event() {
            self.now = base + t.since(SimTime::ZERO);
            match ev {
                SimEvent::MobilityTick => {
                    self.net.advance(model, self.cfg.mobility_tick);
                    // Mobility invalidation: hints *held at* nodes whose
                    // neighborhood changed point along links that may be
                    // gone, so evict them eagerly.
                    self.evict_dirty_hints();
                    engine.schedule_in(self.cfg.mobility_tick, SimEvent::MobilityTick);
                }
                SimEvent::ValidationRound => {
                    self.validation_round();
                    engine.schedule_in(self.cfg.validation_period, SimEvent::ValidationRound);
                }
            }
        }
        self.now = base + duration;
    }

    // -----------------------------------------------------------------
    // Event-driven pipeline hooks (see `crate::events::EventDriver`).
    //
    // `run_mobile` above is the retained tick-synchronous reference; the
    // methods below expose its per-event bodies so the driver can invoke
    // them from an externally-owned schedule. Each one must stay
    // bit-identical to the corresponding arm of `run_mobile` (plus the
    // standing-query and audit extensions, which both drive modes share),
    // which `tests/event_equivalence.rs` pins.
    // -----------------------------------------------------------------

    /// Advance the virtual clock to `t` (event delivery). Never rewinds.
    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "virtual time must not rewind");
        self.now = t;
    }

    /// Mutable node positions for the driver's per-region mobility
    /// advances; every mutation must be followed by
    /// [`CardWorld::event_mobility_refresh`] with the mover report.
    pub(crate) fn positions_mut(&mut self) -> &mut [net_topology::geometry::Point2] {
        self.net.positions_mut()
    }

    /// The post-motion half of a mobility tick, factored out of
    /// [`CardWorld::run_mobile`]'s `MobilityTick` arm: refresh connectivity
    /// around `movers`, evict route hints held at dirty nodes, revalidate
    /// the standing queries whose chains the dirty set touches, and (only
    /// when something moved — so both drive modes advance the sampling
    /// cursor identically) run the sampled grid-residency audit. Returns
    /// the number of audit violations (0 in a healthy pipeline).
    pub fn event_mobility_refresh(&mut self, movers: &[NodeId], audit_samples: usize) -> usize {
        self.net.refresh_movers(movers);
        self.evict_dirty_hints();
        if !self.standing.is_empty() {
            match self.net.dirty_report() {
                DirtyReport::All => self.standing.mark_all(),
                DirtyReport::Exact(dirty) => {
                    for &node in dirty {
                        self.standing.mark_node_dirty(node);
                    }
                }
            }
            self.standing_revalidate_marked();
        }
        if movers.is_empty() || audit_samples == 0 {
            0
        } else {
            self.net.audit_grid_residency(audit_samples)
        }
    }

    /// A validation round plus the standing-query recheck: maintenance may
    /// rewrite contact tables wholesale, so every standing chain is marked
    /// and revalidated (broken queries use the round as their retry
    /// heartbeat).
    pub fn event_validation_round(&mut self) {
        self.validation_round();
        if !self.standing.is_empty() {
            self.standing.mark_all();
            self.standing_revalidate_marked();
        }
    }

    /// Register a standing subscription from `source` for `target` and
    /// resolve it immediately (a fresh escalation, recorded as
    /// `StandingDsq`/`StandingReply` messages). Returns the query id; the
    /// subscription is kept resolved by the event pipeline from here on.
    pub fn standing_register(&mut self, source: NodeId, target: NodeId) -> u32 {
        let id = self.standing.register(source, target, self.now);
        self.standing_resolve(id, true);
        id
    }

    /// The standing-query table (chains, states, lifecycle counters).
    pub fn standing_queries(&self) -> &StandingQueries {
        &self.standing
    }

    /// Resolve (or re-resolve) standing query `id`: depth-0 if the target
    /// sits in the source's own neighborhood, otherwise a full escalation
    /// whose answer chain is captured from the walk's parent pointers.
    fn standing_resolve(&mut self, id: u32, initial: bool) {
        let per = self.per;
        let n = self.net.node_count();
        let CardWorld {
            net,
            cfg,
            stats,
            now,
            shards,
            query_scratch,
            standing,
            faults,
            ..
        } = self;
        let (source, target) = {
            let q = standing.get(id);
            (q.source, q.target)
        };
        // Under faults a crashed endpoint fails the subscription outright
        // (the round heartbeat re-marks it, so a rejoin re-resolves), and
        // the escalation walks with crashed/partitioned edges vetoed.
        let filter = faults.as_ref().map(|rt| QueryFaultFilter {
            down: rt.state.down_mask(),
            sides: rt.state.sides(),
        });
        if let Some(f) = &filter {
            if f.down[source.index()] || f.down[target.index()] {
                standing.set_failed(id);
                return;
            }
        }
        let tables = net.tables();
        if tables.of(source).contains(target)
            && filter.as_ref().is_none_or(|f| f.edge_ok(source, target))
        {
            standing.set_resolved(id, vec![source], *now, initial);
            return;
        }
        let view = TablesView {
            shards: &*shards,
            per,
            n,
        };
        let scratch = &mut query_scratch[0];
        let mut answer = None;
        let out = match &filter {
            Some(f) => escalate_faulted_unrecorded(n, view, source, cfg.depth, scratch, f, |c| {
                let hit = tables.of(c).contains(target) && f.edge_ok(c, target);
                if hit {
                    answer = Some(c);
                }
                hit
            }),
            None => escalate_unrecorded(n, view, source, cfg.depth, scratch, |c| {
                let hit = tables.of(c).contains(target);
                if hit {
                    answer = Some(c);
                }
                hit
            }),
        };
        stats.record_n(*now, MsgKind::StandingDsq, out.query_msgs);
        stats.record_n(*now, MsgKind::StandingReply, out.reply_msgs);
        match answer {
            Some(c) => {
                let mut path = Vec::new();
                scratch.walk_path(c, &mut path);
                standing.set_resolved(id, path, *now, initial);
            }
            None => standing.set_failed(id),
        }
    }

    /// Probe standing query `id`'s cached chain against the live contact
    /// and neighborhood tables: each consecutive pair must still be a live
    /// contact (charging its path hops as probe messages), and the target
    /// must still sit in the tail's neighborhood (a free local check).
    fn standing_probe(&self, id: u32) -> (bool, u64) {
        let q = self.standing.get(id);
        // Fault-aware fast fail: a chain through a crashed node, or one
        // whose endpoints straddle an open partition, cannot answer probes.
        if let Some(rt) = &self.faults {
            if rt.state.is_down(q.target.index())
                || q.path.iter().any(|&p| rt.state.is_down(p.index()))
                || q.path
                    .windows(2)
                    .any(|w| !rt.state.link_allowed(w[0].index(), w[1].index()))
            {
                return (false, 0);
            }
        }
        let mut msgs = 0u64;
        for w in q.path.windows(2) {
            match self.contact_table(w[0]).get(w[1]) {
                Some(c) => msgs += c.hops() as u64,
                None => return (false, msgs),
            }
        }
        let last = *q.path.last().expect("resolved chain is non-empty");
        (self.net.tables().of(last).contains(q.target), msgs)
    }

    /// Drain the pending revalidation marks in id order: probe resolved
    /// chains (breaking failures), then immediately re-resolve everything
    /// broken. A failed re-resolve stays broken until the next mark.
    fn standing_revalidate_marked(&mut self) {
        if !self.standing.has_marks() {
            return;
        }
        let mut ids = std::mem::take(&mut self.standing_ids);
        self.standing.take_marked(&mut ids);
        for &id in &ids {
            self.standing.note_revalidation();
            if self.standing.get(id).is_resolved() {
                let (valid, probe_msgs) = self.standing_probe(id);
                self.stats
                    .record_n(self.now, MsgKind::StandingProbe, probe_msgs);
                if valid {
                    continue;
                }
                self.standing.record_break(id, self.now);
            }
            self.standing_resolve(id, false);
        }
        ids.clear();
        self.standing_ids = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionMethod;
    use mobility::statics::StaticModel;
    use mobility::waypoint::RandomWaypoint;

    fn scenario() -> Scenario {
        Scenario::new(150, 500.0, 500.0, 60.0)
    }

    fn cfg() -> CardConfig {
        CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(8)
            .with_target_contacts(4)
            .with_seed(21)
    }

    #[test]
    fn build_and_select() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert_eq!(w.network().node_count(), 150);
        assert_eq!(w.total_contacts(), 0);
        w.select_all_contacts();
        assert!(
            w.total_contacts() > 0,
            "a 150-node network must yield contacts"
        );
        assert!(w.mean_contacts() <= 4.0);
        assert!(w.stats().total(MsgKind::Csq) > 0);
    }

    #[test]
    fn selection_raises_reachability() {
        let mut w = CardWorld::build(&scenario(), cfg());
        let before = w.reachability_summary(1).mean_pct;
        w.select_all_contacts();
        let after = w.reachability_summary(1).mean_pct;
        assert!(
            after > before,
            "contacts must increase mean reachability ({before:.1}% -> {after:.1}%)"
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut w = CardWorld::build(&scenario(), cfg());
            w.select_all_contacts();
            let mut model = RandomWaypoint::new(
                150,
                w.network().field(),
                1.0,
                10.0,
                0.0,
                SeedSplitter::new(w.config().seed).stream("mobility", 0),
            );
            w.run_mobile(&mut model, SimDuration::from_secs(3));
            (
                w.total_contacts(),
                w.stats().grand_total(),
                w.maintenance_totals().clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mobile_run_populates_pipeline_counters() {
        let mut w = CardWorld::build(&scenario(), cfg());
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            0.5,
            2.0,
            0.0,
            SeedSplitter::new(7).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(2));
        let c = w.pipeline_counters();
        assert!(
            c.movers_reported > 0,
            "zero-pause RWP ticks must report movers"
        );
        // the accessor must surface the network's own counters, not a copy
        // that can drift
        assert_eq!(c, w.network().pipeline_counters());
        assert_eq!(c.changed, w.network().last_changed_count());
        assert_eq!(c.dirty, w.network().last_dirty_count());
    }

    #[test]
    fn static_run_keeps_contacts_and_counts_maintenance() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let contacts_before = w.total_contacts();
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(4));
        // static topology: nothing lost, nothing out of range; re-selection
        // passes (rule 5) may only ADD contacts for nodes still below NoC
        assert!(w.total_contacts() >= contacts_before);
        assert_eq!(w.maintenance_totals().lost, 0);
        assert_eq!(w.maintenance_totals().dropped_out_of_range, 0);
        assert!(
            w.stats().total(MsgKind::Validation) > 0,
            "validation still polls"
        );
        // validation rounds happened at ~0,1,2,3 s (round at 4s is at the horizon)
        assert_eq!(w.contacts_series().len(), 4);
        assert_eq!(w.now(), SimTime::from_secs(4));
    }

    #[test]
    fn mobile_run_loses_and_reselects() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            10.0,
            20.0,
            0.0,
            SeedSplitter::new(7).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(6));
        let totals = w.maintenance_totals();
        assert!(
            totals.lost + totals.dropped_out_of_range > 0,
            "fast mobility should break some contact paths"
        );
        assert!(w.stats().total(MsgKind::Validation) > 0);
        // re-selection kept tables alive
        assert!(w.total_contacts() > 0);
    }

    #[test]
    fn local_recovery_heals_under_mild_mobility() {
        let mut config = cfg();
        config.validation_period = SimDuration::from_secs(1);
        let mut w = CardWorld::build(&scenario(), config);
        w.select_all_contacts();
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            3.0,
            8.0,
            0.0,
            SeedSplitter::new(9).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(8));
        assert!(
            w.maintenance_totals().recovered > 0,
            "mild mobility should exercise local recovery"
        );
    }

    #[test]
    fn timeline_continues_across_runs() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(2));
        assert_eq!(w.now(), SimTime::from_secs(2));
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(2));
        assert_eq!(w.now(), SimTime::from_secs(4));
        // series timestamps are strictly increasing across the two runs
        let times: Vec<_> = w
            .contacts_series()
            .points()
            .iter()
            .map(|(t, _)| *t)
            .collect();
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn query_uses_world_state() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
        w.select_all_contacts();
        // find some target beyond the source's neighborhood but reachable
        let source = NodeId::new(0);
        let reach =
            crate::reachability::reachability_set(w.network(), w.contact_tables(), source, 3);
        let nb = w.network().tables().of(source);
        let beyond: Vec<usize> = reach
            .iter()
            .filter(|&i| !nb.contains(NodeId::from(i)))
            .collect();
        if let Some(&target) = beyond.first() {
            let out = w.query(source, NodeId::from(target));
            assert!(
                out.found,
                "target inside the depth-3 reach set must be found"
            );
            assert!(out.depth_used >= 1);
            assert!(out.query_msgs > 0);
        }
    }

    #[test]
    fn query_all_matches_serial_and_per_query_paths() {
        let pairs: Vec<(NodeId, NodeId)> = (0..60u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 37 + 5) % 150)))
            .collect();
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w.select_all_contacts();
            w
        };
        let mut serial = build(Some(1));
        let expected_outcomes = serial.query_all_serial(&pairs);
        let expected_series = serial.stats().series_where(|_| true);
        for shards in [None, Some(1), Some(3), Some(60), Some(500)] {
            let mut par = build(shards);
            let outcomes = par.query_all(&pairs);
            assert_eq!(outcomes, expected_outcomes, "shards {shards:?}");
            assert_eq!(
                par.stats().series_where(|_| true),
                expected_series,
                "stats diverged at shard count {shards:?}"
            );
        }
        // and the one-at-a-time path agrees too
        let mut loose = build(None);
        let one_by_one: Vec<QueryOutcome> = pairs.iter().map(|&(s, t)| loose.query(s, t)).collect();
        assert_eq!(one_by_one, expected_outcomes);
    }

    #[test]
    fn query_all_handles_empty_and_repeated_sweeps() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(2));
        w.select_all_contacts();
        assert!(w.query_all(&[]).is_empty());
        let pairs = vec![(NodeId::new(0), NodeId::new(100)); 8];
        let first = w.query_all(&pairs);
        let second = w.query_all(&pairs); // scratch reuse across sweeps
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "network zone radius")]
    fn radius_mismatch_rejected() {
        let net = Network::from_scenario(&scenario(), 3, 1);
        let _ = CardWorld::from_network(net, cfg()); // cfg has R=2
    }

    #[test]
    fn saturated_nodes_back_off_selection() {
        // A tiny NoC-unreachable configuration: after a few fruitless
        // rounds, selection traffic per round must fall toward zero even
        // though tables stay below NoC.
        let mut config = cfg().with_target_contacts(50); // far above capacity
        config.validation_period = SimDuration::from_secs(1);
        let mut w = CardWorld::build(&scenario(), config);
        w.select_all_contacts();
        // run long enough for the backoff to reach its cap
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(12));
        let early: u64 = (0..3)
            .map(|b| w.stats().in_bucket_where(b, MsgKind::is_selection))
            .sum();
        let late: u64 = (3..6)
            .map(|b| w.stats().in_bucket_where(b, MsgKind::is_selection))
            .sum();
        assert!(
            late < early / 2,
            "backoff should quiesce fruitless selection (early {early}, late {late})"
        );
        assert!(w.mean_contacts() < 50.0, "capacity is genuinely below NoC");
    }

    #[test]
    fn backoff_resets_when_a_contact_is_found() {
        // With NoC at capacity, nodes that reach NoC keep level 0: the
        // series stays stable and the maintenance counters keep moving.
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let before = w.maintenance_totals().validated;
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(3));
        assert!(w.maintenance_totals().validated > before);
    }

    /// Per-node contact (id, path) lists — the full observable table state.
    type TableSnapshot = Vec<Vec<(NodeId, Vec<NodeId>)>>;

    /// Full comparable state snapshot: contact tables (ids + paths),
    /// backoff state, stats totals and bucket series, maintenance totals.
    fn snapshot(w: &CardWorld) -> (TableSnapshot, Vec<u64>, MaintenanceTotals) {
        let tables: TableSnapshot = w
            .contact_tables()
            .iter()
            .map(|t| {
                t.contacts()
                    .iter()
                    .map(|c| (c.id, c.path.clone()))
                    .collect()
            })
            .collect();
        let series = w.stats().series_where(|_| true);
        (tables, series, w.maintenance_totals().clone())
    }

    #[test]
    fn parallel_sweeps_match_serial_reference() {
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg());
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w
        };
        let mut serial = build(Some(1));
        serial.select_all_contacts_serial();
        serial.validation_round_serial();
        serial.validation_round_serial();
        let expected = snapshot(&serial);
        for shards in [None, Some(1), Some(3), Some(150), Some(1000)] {
            let mut par = build(shards);
            par.select_all_contacts();
            par.validation_round();
            par.validation_round();
            assert_eq!(
                snapshot(&par),
                expected,
                "sharded sweep diverged at shard count {shards:?}"
            );
        }
    }

    #[test]
    fn shard_count_is_settable_and_bounded() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert!(w.shard_count() >= 1);
        w.set_shard_count(7);
        assert_eq!(w.shard_count(), 7);
        w.select_all_contacts();
        assert!(w.total_contacts() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one protocol shard")]
    fn zero_shards_rejected() {
        CardWorld::build(&scenario(), cfg()).set_shard_count(0);
    }

    #[test]
    fn hints_toggle_round_trip() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert!(!w.hints_enabled());
        assert!(w.hint_store().is_none());
        w.set_hints_enabled(true);
        assert!(w.hints_enabled());
        let store = w.hint_store().expect("enabled world has a store");
        assert_eq!(store.node_count(), 150);
        assert!(store.is_empty());
        w.set_hints_enabled(true); // idempotent: must not rebuild/clear
        w.set_hints_enabled(false);
        assert!(!w.hints_enabled());
        // a world built with hints in the config starts enabled
        let w2 = CardWorld::build(&scenario(), cfg().with_hints(true));
        assert!(w2.hints_enabled());
    }

    #[test]
    fn hinted_queries_agree_with_cache_off_on_found() {
        // Hints may only change the *cost* of a query, never its answer:
        // across repeated (warming) sweeps, every outcome's `found` and
        // `depth_used`-reachability verdict must match the cache-off path.
        let pairs: Vec<(NodeId, NodeId)> = (0..80u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 13 + 31) % 150)))
            .collect();
        let mut base = CardWorld::build(&scenario(), cfg().with_depth(3));
        base.select_all_contacts();
        let mut hinted = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        hinted.select_all_contacts();
        let expected = base.query_all_cache_off(&pairs);
        for sweep in 0..3 {
            let got = hinted.query_all(&pairs);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.found, e.found, "answer flipped on sweep {sweep}");
            }
        }
        let stats = hinted.hint_stats();
        assert!(stats.lookups > 0, "hinted sweeps must consult the cache");
        assert!(stats.deposits > 0, "resolved queries must deposit hints");
        assert!(
            stats.hits > 0,
            "the repeat sweeps must hit deposited hints: {stats:?}"
        );
    }

    #[test]
    fn hinted_sweep_is_shard_count_invariant() {
        let pairs: Vec<(NodeId, NodeId)> = (0..60u32)
            .map(|i| (NodeId::new((i * 7) % 150), NodeId::new((i * 53 + 2) % 150)))
            .collect();
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w.select_all_contacts();
            w
        };
        let mut reference = build(Some(1));
        let warm = reference.query_all(&pairs);
        let warm2 = reference.query_all(&pairs);
        let expected_stats = reference.hint_stats().clone();
        let expected_series = reference.stats().series_where(|_| true);
        for shards in [None, Some(3), Some(60), Some(500)] {
            let mut par = build(shards);
            assert_eq!(par.query_all(&pairs), warm, "cold sweep at {shards:?}");
            assert_eq!(par.query_all(&pairs), warm2, "warm sweep at {shards:?}");
            assert_eq!(
                par.hint_stats(),
                &expected_stats,
                "hint counters diverged at shard count {shards:?}"
            );
            assert_eq!(
                par.stats().series_where(|_| true),
                expected_series,
                "message series diverged at shard count {shards:?}"
            );
        }
    }

    #[test]
    fn live_queries_warm_the_very_next_call() {
        // The one-at-a-time path applies deposits immediately: repeating
        // the same resolved query must hit the cache on the second call
        // and spend no more messages than the first.
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        w.select_all_contacts();
        let reach = crate::reachability::reachability_set(
            w.network(),
            w.contact_tables(),
            NodeId::new(0),
            3,
        );
        let nb = w.network().tables().of(NodeId::new(0));
        let Some(target) = reach
            .iter()
            .map(NodeId::from)
            .find(|&t| !nb.contains(t) && t != NodeId::new(0))
        else {
            return; // topology left nothing beyond the zone — vacuous
        };
        let first = w.query(NodeId::new(0), target);
        assert!(first.found);
        let hits_before = w.hint_stats().hits;
        let second = w.query(NodeId::new(0), target);
        assert!(second.found);
        assert!(
            w.hint_stats().hits > hits_before,
            "second identical query must hit the cache: {:?}",
            w.hint_stats()
        );
        assert!(
            second.query_msgs <= first.query_msgs,
            "a cache hit may not cost more ({} > {})",
            second.query_msgs,
            first.query_msgs
        );
    }

    #[test]
    fn em_vs_pm_reachability_order() {
        // The headline Fig 3 claim, in miniature: EM ≥ PM in mean reachability.
        let em = {
            let mut w = CardWorld::build(&scenario(), cfg().with_method(SelectionMethod::Edge));
            w.select_all_contacts();
            w.reachability_summary(1).mean_pct
        };
        let pm = {
            let mut w = CardWorld::build(
                &scenario(),
                cfg().with_method(SelectionMethod::ProbabilisticEq2),
            );
            w.select_all_contacts();
            w.reachability_summary(1).mean_pct
        };
        assert!(
            em >= pm * 0.95,
            "EM ({em:.1}%) should not trail PM ({pm:.1}%) meaningfully"
        );
    }

    #[test]
    fn plane_sweep_matches_cache_off_and_serial() {
        // The fully message-mediated walk must be bit-identical to the
        // direct-read sweep and the serial reference — outcomes AND the
        // recorded message series — at every shard count.
        let pairs: Vec<(NodeId, NodeId)> = (0..70u32)
            .map(|i| (NodeId::new((i * 11) % 150), NodeId::new((i * 29 + 3) % 150)))
            .collect();
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w.select_all_contacts();
            w
        };
        let mut reference = build(Some(1));
        let expected = reference.query_all_cache_off(&pairs);
        let expected_series = reference.stats().series_where(|_| true);
        for shards in [None, Some(1), Some(4), Some(150)] {
            let mut w = build(shards);
            let got = w.query_all_plane(&pairs);
            assert_eq!(got, expected, "plane sweep diverged at shards {shards:?}");
            assert_eq!(
                w.stats().series_where(|_| true),
                expected_series,
                "plane sweep series diverged at shards {shards:?}"
            );
            let ps = w.plane_stats();
            assert!(ps.rounds > 0, "plane sweep must exchange");
            assert!(ps.sent > 0, "plane sweep must send expansions");
        }
    }

    #[test]
    fn reshard_migrates_state_mid_run() {
        // Re-partitioning mid-run must carry contact tables, RNG streams,
        // backoff counters, and cached hints across intact: a world
        // resharded between sweeps stays bit-identical to one that never
        // resharded.
        let pairs: Vec<(NodeId, NodeId)> = (0..50u32)
            .map(|i| (NodeId::new((i * 3) % 150), NodeId::new((i * 41 + 7) % 150)))
            .collect();
        let mut a = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        a.select_all_contacts();
        let mut b = a.clone();
        let warm_a = a.query_all(&pairs); // deposits hints
        let warm_b = b.query_all(&pairs);
        assert_eq!(warm_a, warm_b);
        b.set_shard_count(5); // migrate mid-run, hints warm
        assert_eq!(b.shard_count(), 5);
        a.validation_round();
        b.validation_round();
        let again_a = a.query_all(&pairs);
        let again_b = b.query_all(&pairs);
        assert_eq!(again_a, again_b, "resharding changed query outcomes");
        assert_eq!(
            a.hint_stats(),
            b.hint_stats(),
            "resharding changed hint state"
        );
        assert_eq!(snapshot(&a), snapshot(&b), "resharding changed world state");
        // hint contents survived the migration (not just counters)
        assert_eq!(
            a.hint_store().map(|s| (s.len(), s.epoch())),
            b.hint_store().map(|s| (s.len(), s.epoch())),
        );
    }

    #[test]
    fn query_all_into_reuses_buffers() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(2).with_hints(true));
        w.select_all_contacts();
        let pairs: Vec<(NodeId, NodeId)> = (0..30u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 17 + 9) % 150)))
            .collect();
        let mut buf = Vec::new();
        w.query_all_into(&pairs, &mut buf);
        let first = buf.clone();
        let cap = buf.capacity();
        w.query_all_into(&pairs, &mut buf);
        assert_eq!(buf.len(), pairs.len());
        assert_eq!(buf, w.query_all(&pairs.clone()), "buffer path diverged");
        assert!(
            buf.capacity() >= cap && cap >= pairs.len(),
            "reused buffer must keep its capacity"
        );
        // identical world state ⇒ repeated sweeps only differ through
        // fresh hint deposits, never through buffer reuse
        assert_eq!(first.len(), buf.len());
    }

    fn fault_cfg() -> sim_core::faults::FaultConfig {
        sim_core::faults::FaultConfig {
            churn_rate: 0.2,
            rejoin_after: 2,
            partition: Some(sim_core::faults::PartitionWindow {
                start_round: 1,
                end_round: 3,
                fraction: 0.5,
            }),
            drop_rate: 0.08,
            delay_rate: 0.08,
            rounds: 6,
        }
    }

    #[test]
    fn faulted_rounds_are_deterministic_across_shards_and_drivers() {
        let pairs: Vec<(NodeId, NodeId)> = (0..30u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 37 + 5) % 150)))
            .collect();
        let run = |shards: usize, serial: bool| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
            w.set_shard_count(shards);
            w.select_all_contacts();
            w.enable_faults(FaultPlan::generate(&fault_cfg(), 150, 99));
            let mut outcomes = Vec::new();
            for _ in 0..6 {
                if serial {
                    w.validation_round_serial();
                } else {
                    w.validation_round();
                }
                outcomes.push(w.query_all(&pairs));
            }
            // Of the plane counters only the totals are shard-invariant:
            // the local/cross_shard split (and metered crossings) depend on
            // where the shard boundaries fall.
            let ps = w.plane_stats();
            let plane_totals = (
                ps.sent,
                ps.dropped,
                ps.delayed,
                ps.local + ps.cross_shard,
                ps.rounds,
            );
            (
                snapshot(&w),
                outcomes,
                w.fault_report(),
                w.hint_stats().clone(),
                plane_totals,
            )
        };
        let reference = run(1, true);
        assert!(reference.2.crashes > 0, "plan must crash someone");
        assert!(reference.2.rejoins > 0, "crashed nodes must rejoin");
        assert_eq!(reference.2.partitions_opened, 1);
        assert_eq!(reference.2.partitions_healed, 1);
        assert_eq!(reference.2.liveness_violations, 0);
        assert_eq!(reference.2.grid_audit_violations, 0);
        for (shards, serial) in [(1, false), (2, true), (2, false), (4, false), (4, true)] {
            assert_eq!(
                run(shards, serial),
                reference,
                "faulted run diverged at {shards} shards, serial={serial}"
            );
        }
    }

    #[test]
    fn crash_wipes_state_and_tombstones_bar_reselection() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        // Hand-build a plan: node 0 crashes at round 0, never rejoins.
        let plan = FaultPlan::generate(
            &sim_core::faults::FaultConfig {
                churn_rate: 0.0,
                rejoin_after: 0,
                partition: None,
                drop_rate: 0.0,
                delay_rate: 0.0,
                rounds: 4,
            },
            150,
            7,
        );
        assert!(plan.events().is_empty(), "zero churn schedules nothing");
        // Use a churny plan instead and inspect whichever node it crashes.
        let plan = FaultPlan::generate(
            &sim_core::faults::FaultConfig {
                churn_rate: 0.1,
                rejoin_after: 0,
                partition: None,
                drop_rate: 0.0,
                delay_rate: 0.0,
                rounds: 1,
            },
            150,
            7,
        );
        let victims: Vec<usize> = plan.events().iter().map(|e| e.node as usize).collect();
        assert!(!victims.is_empty());
        w.enable_faults(plan);
        for _ in 0..2 {
            w.validation_round();
        }
        let report = w.fault_report();
        assert_eq!(report.crashes as usize, victims.len());
        assert_eq!(report.down_now, victims.len(), "nobody rejoins");
        assert_eq!(report.liveness_violations, 0);
        for &v in &victims {
            assert_eq!(
                w.contact_table(NodeId::from(v)).len(),
                0,
                "crashed node keeps no contacts"
            );
            // Tombstones bar re-selection: a table that has watched `v`
            // die never lists it again while the tombstone lives. (A node
            // that never held `v` may still pick it as a *fresh* contact —
            // crashes are radio-off, so the graph keeps the node — and
            // tombstones it on its next validation round.)
            for i in 0..150 {
                if victims.contains(&i) {
                    continue;
                }
                let table = w.contact_table(NodeId::from(i));
                assert!(
                    !(table.is_tombstoned(NodeId::from(v)) && table.contains(NodeId::from(v))),
                    "node {i} lists crashed contact {v} despite a live tombstone"
                );
            }
        }
    }

    #[test]
    fn faulted_queries_fail_fast_on_down_endpoints_and_retry() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
        w.select_all_contacts();
        let plan = FaultPlan::generate(
            &sim_core::faults::FaultConfig {
                churn_rate: 0.1,
                rejoin_after: 2,
                partition: None,
                drop_rate: 0.0,
                delay_rate: 0.0,
                rounds: 1,
            },
            150,
            13,
        );
        let victim = NodeId::from(plan.events()[0].node as usize);
        w.enable_faults(plan);
        // Crash rounds are drawn from [1, rounds]; the world's first round
        // is 0, so two rounds cover every crash in this plan.
        w.validation_round();
        w.validation_round();
        let down_now: Vec<usize> = (0..150)
            .filter(|&i| w.fault_state().expect("armed").is_down(i))
            .collect();
        assert!(down_now.contains(&victim.index()));
        let out = w.query(NodeId::new(1), victim);
        assert!(!out.found, "query to a crashed node must fail");
        assert_eq!(out.query_msgs, 0, "nobody to ask charges nothing");
        assert_eq!(w.pending_query_retries(), 1, "failure enters the queue");
        // Rounds drain the retry queue until the cap abandons the pair.
        for _ in 0..20 {
            w.validation_round();
        }
        let report = w.fault_report();
        assert_eq!(report.retry.scheduled, 1);
        assert!(report.retry.retried >= 1);
        assert_eq!(w.pending_query_retries(), 0, "cap bounds the queue");
    }

    #[test]
    fn shard_memory_and_plane_stats_surface() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        w.select_all_contacts();
        let mem = w.shard_memory_bytes();
        assert_eq!(mem.len(), w.shard_count());
        assert!(
            mem.iter().sum::<usize>() > 0,
            "selected tables must occupy memory"
        );
        let pairs: Vec<(NodeId, NodeId)> = (0..40u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 31 + 11) % 150)))
            .collect();
        w.query_all(&pairs);
        let ps = w.plane_stats().clone();
        assert!(ps.rounds >= 1, "hinted sweep exchanges deposits");
        if w.hint_stats().deposits > 0 {
            assert!(ps.sent > 0, "deposits must travel the plane");
            // Full ledger: faulted deliveries account drops and deferrals
            // (both zero on this calm world).
            assert_eq!(ps.sent, ps.local + ps.cross_shard + ps.dropped);
            assert_eq!(ps.dropped, 0);
            assert_eq!(ps.delayed, 0);
        }
        w.validation_round();
        assert!(
            w.plane_stats().metered_crossings >= ps.metered_crossings,
            "validation meters crossings monotonically"
        );
        w.reset_plane_stats();
        assert_eq!(w.plane_stats().sent, 0);
    }
}

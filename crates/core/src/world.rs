//! `CardWorld` — the complete protocol-over-network world.
//!
//! Couples a [`Network`] with per-node CARD state (contact tables, RNG
//! streams) and drives the event loop of the mobile experiments: mobility
//! ticks (topology refresh) interleaved with per-period validation rounds
//! (§III.C.3) and re-selection (rule 5). All static analyses (reachability,
//! one-shot selection, queries) are direct method calls.
//!
//! ## Sharded protocol state
//!
//! Per-node protocol state — contact tables, per-node RNG streams, backoff
//! counters — lives in flat arrays indexed by node id, and the two
//! whole-network protocol sweeps ([`CardWorld::select_all_contacts`] and
//! [`CardWorld::validation_round`]) fan out over *shards* of those arrays
//! on the persistent [`sim_core::par`] worker pool. A shard is a contiguous
//! span of node indices (see [`sim_core::par::shard_spans`]) bundled with a
//! shard-owned [`CsqScratch`] walk workspace; the fan-out gives each shard
//! to exactly one worker via [`sim_core::par::parallel_shard_map`].
//!
//! **Determinism.** Every random protocol decision draws from the RNG
//! stream of the node making it (derived as `("card-node", node)` from the
//! config seed), never from a shared stream, and each node's sweep work
//! reads only the immutable [`Network`] plus its own state. Message
//! counters are accumulated into per-shard [`MsgStats`] deltas and merged
//! in shard order afterwards. The result of a sweep is therefore a pure
//! function of `(network, config, per-node state)` — bit-identical across
//! worker counts, shard counts, and the serial reference paths
//! ([`CardWorld::select_all_contacts_serial`],
//! [`CardWorld::validation_round_serial`]), which exist precisely to pin
//! that equivalence in tests and benches.
//!
//! ## Batched query sweeps
//!
//! Queries are read-only over the protocol state (contact tables and
//! neighborhood tables; no RNG draws), so [`CardWorld::query_all`] shards
//! the *pair list* rather than the node arrays: each shard of pairs runs
//! on a shard-owned [`QueryScratch`] (the incremental-escalation walk
//! workspace — see [`crate::query`]) and accumulates its DSQ/reply
//! counters into a per-shard delta, merged into the world statistics in
//! shard order. Every query of a sweep lands at the same virtual instant
//! and zero counts never record, so the shard deltas are plain counter
//! pairs recorded in bulk — the resulting buckets are bit-identical to
//! per-query recording, minus thousands of map probes per sweep. Outcomes
//! are a pure function of `(network, tables, pair)`, so the sweep equals
//! [`CardWorld::query_all_serial`] — and a loop of [`CardWorld::query`]
//! calls — bit for bit at any worker or shard count.

use manet_routing::network::Network;
use mobility::model::MobilityModel;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::engine::Engine;
use sim_core::par::{max_workers, parallel_shard_map, shard_spans};
use sim_core::rng::{RngStream, SeedSplitter};
use sim_core::stats::{MsgKind, MsgStats, TimeSeries};
use sim_core::time::{SimDuration, SimTime};

use crate::config::CardConfig;
use crate::contact::ContactTable;
use crate::csq::{select_contacts, CsqScratch, ALL_EDGE_NODES};
use crate::hints::{HintDeposit, HintStats, HintStore};
use crate::maintenance::{validate_contacts, ValidationReport};
use crate::query::{
    dsq_query, dsq_query_hinted, dsq_query_hinted_unrecorded, dsq_query_unrecorded,
    escalate_unrecorded, HintContext, QueryOutcome, QueryScratch,
};
use crate::reachability::ReachabilitySummary;
use crate::resources::{resource_query, resource_query_hinted, ResourceId, ResourceRegistry};
use crate::standing::StandingQueries;
use manet_routing::network::DirtyReport;

/// Aggregated maintenance counters over a whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceTotals {
    /// Successful path validations.
    pub validated: u64,
    /// Contacts lost to unsalvageable paths.
    pub lost: u64,
    /// Contacts dropped by the `[2R, r]` rule.
    pub dropped_out_of_range: u64,
    /// Paths healed by local recovery.
    pub recovered: u64,
}

impl MaintenanceTotals {
    fn absorb(&mut self, r: &ValidationReport) {
        self.validated += r.validated as u64;
        self.lost += r.lost as u64;
        self.dropped_out_of_range += r.dropped_out_of_range as u64;
        self.recovered += r.recovered as u64;
    }

    fn merge(&mut self, other: &MaintenanceTotals) {
        self.validated += other.validated;
        self.lost += other.lost;
        self.dropped_out_of_range += other.dropped_out_of_range;
        self.recovered += other.recovered;
    }
}

/// One shard of per-node protocol state: disjoint mutable spans of the
/// world's flat arrays plus the shard-owned walk workspace. Built fresh for
/// each sweep (the spans borrow the world), handed to exactly one worker.
struct ShardView<'a> {
    /// First node index of the span (`contacts[k]` is node `start + k`).
    start: usize,
    contacts: &'a mut [ContactTable],
    rngs: &'a mut [RngStream],
    backoff_remaining: &'a mut [u32],
    backoff_level: &'a mut [u32],
    scratch: &'a mut CsqScratch,
}

/// Everything a shard's sweep emits, merged into the world in shard order.
#[derive(Debug)]
struct ShardDelta {
    stats: MsgStats,
    maintenance: MaintenanceTotals,
}

/// Simulation events of the mobile run loop.
enum SimEvent {
    /// Move nodes, then incrementally refresh connectivity and the dirty
    /// neighborhood tables (see [`Network::refresh`]).
    MobilityTick,
    /// Validate every node's contacts; re-select up to NoC (§III.C.3.5).
    ValidationRound,
}

/// The CARD world: network + per-node protocol state + measurement.
///
/// `Clone` snapshots the entire world — network, contact tables, RNG
/// streams, statistics — so divergent what-if runs (and the sweep benches)
/// can branch from a common prepared state.
#[derive(Clone)]
pub struct CardWorld {
    net: Network,
    cfg: CardConfig,
    contacts: Vec<ContactTable>,
    stats: MsgStats,
    node_rngs: Vec<RngStream>,
    /// Absolute virtual time reached so far (advanced by `run_mobile`).
    now: SimTime,
    /// (time, total live contacts) after each validation round (Fig 13).
    contacts_series: TimeSeries,
    maintenance: MaintenanceTotals,
    /// Per-node selection backoff: rounds left to skip, and the backoff
    /// level that produced that skip count.
    backoff_remaining: Vec<u32>,
    backoff_level: Vec<u32>,
    /// One persistent CSQ walk workspace per protocol shard; `len()` is the
    /// shard count. Walks run every validation round for every node, so the
    /// workspaces must survive across sweeps (a scratch's buffers grow to
    /// O(N) once and are then reused allocation-free).
    shard_scratch: Vec<CsqScratch>,
    /// One persistent query walk workspace per protocol shard (kept in
    /// lockstep with `shard_scratch`). Scratch 0 also serves the one-off
    /// [`CardWorld::query`] path, so steady-state querying never allocates.
    query_scratch: Vec<QueryScratch>,
    /// The §V route-hint cache (`Some` iff `cfg.hints_enabled` or enabled
    /// at runtime via [`CardWorld::set_hints_enabled`]; see `crate::hints`).
    hints: Option<HintStore>,
    /// Hit/miss/staleness counters of the hint subsystem.
    hint_stats: HintStats,
    /// Reusable deposit log for the live single-query path.
    hint_deposits: Vec<HintDeposit>,
    /// Long-lived standing subscriptions (see [`crate::standing`]).
    standing: StandingQueries,
    /// Reusable drain buffer for pending standing-query revalidations.
    standing_ids: Vec<u32>,
}

/// Cap on the exponential selection backoff level (2^5 − 1 = 31 rounds).
const MAX_BACKOFF_LEVEL: u32 = 5;

/// Default protocol shard count: twice the fan-out width, so the pull-queue
/// scheduling in `sim_core::par` can rebalance when CSQ walk costs differ
/// across spans, without multiplying the O(N) per-shard scratch memory
/// further than needed.
fn default_shard_count() -> usize {
    (2 * max_workers()).max(1)
}

impl CardWorld {
    /// Instantiate a scenario (uniform placement from `cfg.seed`) and build
    /// the world.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`CardConfig::validate`]).
    pub fn build(scenario: &Scenario, cfg: CardConfig) -> Self {
        cfg.validate();
        let net = Network::from_scenario(scenario, cfg.radius, cfg.seed);
        Self::from_network(net, cfg)
    }

    /// Wrap an existing network (custom topologies, tests).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the network's zone radius
    /// differs from `cfg.radius`.
    pub fn from_network(net: Network, cfg: CardConfig) -> Self {
        cfg.validate();
        assert_eq!(
            net.radius(),
            cfg.radius,
            "network zone radius {} != config R {}",
            net.radius(),
            cfg.radius
        );
        let n = net.node_count();
        let splitter = SeedSplitter::new(cfg.seed);
        let node_rngs = (0..n)
            .map(|i| splitter.stream("card-node", i as u64))
            .collect();
        CardWorld {
            net,
            cfg,
            contacts: (0..n).map(|_| ContactTable::new()).collect(),
            stats: MsgStats::new(SimDuration::from_secs(2)),
            node_rngs,
            now: SimTime::ZERO,
            contacts_series: TimeSeries::new(),
            maintenance: MaintenanceTotals::default(),
            backoff_remaining: vec![0; n],
            backoff_level: vec![0; n],
            shard_scratch: (0..default_shard_count())
                .map(|_| CsqScratch::new())
                .collect(),
            query_scratch: (0..default_shard_count())
                .map(|_| QueryScratch::new())
                .collect(),
            hints: cfg
                .hints_enabled
                .then(|| HintStore::new(n, cfg.hint_slots_per_bucket, cfg.hint_ttl)),
            hint_stats: HintStats::default(),
            hint_deposits: Vec::new(),
            standing: StandingQueries::new(n),
            standing_ids: Vec::new(),
        }
    }

    /// Number of protocol shards the whole-network sweeps fan out over.
    pub fn shard_count(&self) -> usize {
        self.shard_scratch.len()
    }

    /// Override the protocol shard count (tests, tuning). Results are
    /// shard-count-independent — per-node RNG streams make each node's
    /// decisions a function of its own state — so this only moves the
    /// parallelism/memory trade-off (each shard holds an O(N)-growing walk
    /// scratch).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn set_shard_count(&mut self, shards: usize) {
        assert!(shards > 0, "need at least one protocol shard");
        self.shard_scratch.resize_with(shards, CsqScratch::new);
        self.shard_scratch.shrink_to_fit();
        self.query_scratch.resize_with(shards, QueryScratch::new);
        self.query_scratch.shrink_to_fit();
    }

    /// Split every per-node array into disjoint shard views, one per
    /// scratch. The split is the canonical [`shard_spans`] partition, so
    /// shard k always owns the same node span for a given (N, shard count).
    fn shard_views<'a>(
        contacts: &'a mut [ContactTable],
        rngs: &'a mut [RngStream],
        backoff_remaining: &'a mut [u32],
        backoff_level: &'a mut [u32],
        scratches: &'a mut [CsqScratch],
    ) -> Vec<ShardView<'a>> {
        let n = contacts.len();
        let spans = shard_spans(n, scratches.len());
        let mut views = Vec::with_capacity(spans.len());
        let (mut contacts, mut rngs) = (contacts, rngs);
        let (mut backoff_remaining, mut backoff_level) = (backoff_remaining, backoff_level);
        let mut scratches = scratches;
        for span in spans {
            let len = span.end - span.start;
            let (c, c_rest) = contacts.split_at_mut(len);
            let (r, r_rest) = rngs.split_at_mut(len);
            let (br, br_rest) = backoff_remaining.split_at_mut(len);
            let (bl, bl_rest) = backoff_level.split_at_mut(len);
            let (s, s_rest) = scratches.split_at_mut(1);
            contacts = c_rest;
            rngs = r_rest;
            backoff_remaining = br_rest;
            backoff_level = bl_rest;
            scratches = s_rest;
            views.push(ShardView {
                start: span.start,
                contacts: c,
                rngs: r,
                backoff_remaining: br,
                backoff_level: bl,
                scratch: &mut s[0],
            });
        }
        views
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Stage-by-stage work counters of the network's last topology
    /// refresh. Mobility ticks inside [`CardWorld::run_mobile`] run the
    /// mover-driven pipeline (mobility reports its movers, the grid and
    /// CSR adjacency are patched around them), and these counters are the
    /// observability hook: movers reported, grid entries re-bucketed,
    /// adjacency rows patched, neighborhoods rebuilt.
    pub fn pipeline_counters(&self) -> manet_routing::network::PipelineCounters {
        self.net.pipeline_counters()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &CardConfig {
        &self.cfg
    }

    /// Message statistics accumulated so far.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The contact table of one node.
    pub fn contact_table(&self, node: NodeId) -> &ContactTable {
        &self.contacts[node.index()]
    }

    /// All contact tables, indexed by node id.
    pub fn contact_tables(&self) -> &[ContactTable] {
        &self.contacts
    }

    /// Total live contacts across all nodes.
    pub fn total_contacts(&self) -> usize {
        self.contacts.iter().map(ContactTable::len).sum()
    }

    /// Mean live contacts per node.
    pub fn mean_contacts(&self) -> f64 {
        if self.contacts.is_empty() {
            return 0.0;
        }
        self.total_contacts() as f64 / self.contacts.len() as f64
    }

    /// `(time, total contacts)` after each validation round.
    pub fn contacts_series(&self) -> &TimeSeries {
        &self.contacts_series
    }

    /// Aggregated maintenance outcomes.
    pub fn maintenance_totals(&self) -> &MaintenanceTotals {
        &self.maintenance
    }

    /// Is the §V route-hint cache active?
    pub fn hints_enabled(&self) -> bool {
        self.hints.is_some()
    }

    /// Enable or disable the route-hint cache at runtime. Enabling builds
    /// an empty store from the config's sizing knobs; disabling drops the
    /// store entirely (the cache-off query paths never touch the
    /// subsystem, so a disabled world is bit-identical to one that never
    /// had hints).
    pub fn set_hints_enabled(&mut self, enabled: bool) {
        if enabled && self.hints.is_none() {
            self.hints = Some(HintStore::new(
                self.net.node_count(),
                self.cfg.hint_slots_per_bucket,
                self.cfg.hint_ttl,
            ));
        } else if !enabled {
            self.hints = None;
        }
    }

    /// Hint-subsystem counters accumulated so far (see [`HintStats`]).
    pub fn hint_stats(&self) -> &HintStats {
        &self.hint_stats
    }

    /// Reset the hint counters (phase-by-phase measurement).
    pub fn reset_hint_stats(&mut self) {
        self.hint_stats = HintStats::default();
    }

    /// The hint store, when enabled (observability, tests).
    pub fn hint_store(&self) -> Option<&HintStore> {
        self.hints.as_ref()
    }

    /// Empty the hint store (cold-cache resets) without touching counters.
    pub fn clear_hints(&mut self) {
        if let Some(store) = &mut self.hints {
            store.clear();
        }
    }

    /// Apply a query's (or shard's) queued hint deposits in order,
    /// counting writes and LRU evictions.
    fn apply_deposits(store: &mut HintStore, stats: &mut HintStats, deposits: &[HintDeposit]) {
        for d in deposits {
            let out = store.deposit(d.holder, d.key, d.next_hop, d.depth);
            stats.deposits += 1;
            if out.evicted_live {
                stats.evicted_lru += 1;
            }
        }
    }

    /// Run contact selection (one pass over shuffled edge nodes, §III.C.1)
    /// for a single node, topping its table up toward NoC.
    pub fn select_contacts_for(&mut self, node: NodeId) {
        let i = node.index();
        // Use the owning shard's scratch: any scratch gives identical
        // results (walks clear exactly what they touched), this one just
        // keeps buffer growth where the sweeps already paid for it. The
        // canonical partition is contiguous with span width
        // ceil(n / shards), so ownership is a division, not a search.
        let per = self
            .contacts
            .len()
            .div_ceil(self.shard_scratch.len())
            .max(1);
        let shard = i / per;
        select_contacts(
            &self.net,
            &self.cfg,
            node,
            &mut self.contacts[i],
            &mut self.node_rngs[i],
            &mut self.stats,
            self.now,
            ALL_EDGE_NODES,
            &mut self.shard_scratch[shard],
        );
    }

    /// Initial contact selection for every node, fanned out over the
    /// protocol shards (see the module docs). Bit-identical to
    /// [`CardWorld::select_all_contacts_serial`].
    pub fn select_all_contacts(&mut self) {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            node_rngs,
            now,
            backoff_remaining,
            backoff_level,
            shard_scratch,
            ..
        } = self;
        let mut views = Self::shard_views(
            contacts,
            node_rngs,
            backoff_remaining,
            backoff_level,
            shard_scratch,
        );
        let width = stats.bucket_width();
        let at = *now;
        let deltas = parallel_shard_map(&mut views, |_, view| {
            let mut delta = MsgStats::new(width);
            for k in 0..view.contacts.len() {
                select_contacts(
                    net,
                    cfg,
                    NodeId::from(view.start + k),
                    &mut view.contacts[k],
                    &mut view.rngs[k],
                    &mut delta,
                    at,
                    ALL_EDGE_NODES,
                    view.scratch,
                );
            }
            delta
        });
        for delta in &deltas {
            stats.merge(delta);
        }
    }

    /// Serial reference for [`CardWorld::select_all_contacts`]: the same
    /// per-node work on the caller's thread, one node at a time. Kept (like
    /// `Network::refresh_full`) as the equivalence anchor for tests and the
    /// `select_all_contacts/*` benches.
    pub fn select_all_contacts_serial(&mut self) {
        for node in NodeId::all(self.net.node_count()) {
            self.select_contacts_for(node);
        }
    }

    /// One validation round for every node: validate paths (healing with
    /// local recovery), drop rule-4 violators, then — per §III.C.3 rule 5 —
    /// re-select toward NoC. The sweep fans out over the protocol shards;
    /// [`CardWorld::validation_round_serial`] is the bit-identical serial
    /// reference.
    ///
    /// Re-selection is throttled twice, which is what keeps steady-state
    /// overhead at the per-node magnitudes of Figs 10–13 (the paper's
    /// steady state is essentially validation-only):
    /// * at most `cfg.selection_walks_per_round` CSQs per node per round
    ///   ("one at a time", §III.C.1);
    /// * exponential backoff after fruitless rounds — a node whose
    ///   selection attempt yields nothing skips `2^level − 1` rounds
    ///   (level capped at 5), resetting on any success. Saturated nodes
    ///   (NoC above the annulus capacity) therefore go quiet instead of
    ///   re-sweeping the region every period.
    pub fn validation_round(&mut self) {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            node_rngs,
            now,
            maintenance,
            backoff_remaining,
            backoff_level,
            shard_scratch,
            ..
        } = self;
        let mut views = Self::shard_views(
            contacts,
            node_rngs,
            backoff_remaining,
            backoff_level,
            shard_scratch,
        );
        let width = stats.bucket_width();
        let at = *now;
        let deltas = parallel_shard_map(&mut views, |_, view| {
            Self::validate_span(net, cfg, view, at, width)
        });
        for delta in &deltas {
            stats.merge(&delta.stats);
            maintenance.merge(&delta.maintenance);
        }
        if let Some(store) = &mut self.hints {
            store.advance_epoch();
        }
        self.contacts_series
            .push(self.now, self.total_contacts() as f64);
    }

    /// Serial reference for [`CardWorld::validation_round`]: the same
    /// validate-then-reselect pass over all nodes as one span on the
    /// caller's thread.
    pub fn validation_round_serial(&mut self) {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            node_rngs,
            now,
            maintenance,
            backoff_remaining,
            backoff_level,
            shard_scratch,
            ..
        } = self;
        let mut view = ShardView {
            start: 0,
            contacts,
            rngs: node_rngs,
            backoff_remaining,
            backoff_level,
            scratch: &mut shard_scratch[0],
        };
        let width = stats.bucket_width();
        let delta = Self::validate_span(net, cfg, &mut view, *now, width);
        stats.merge(&delta.stats);
        maintenance.merge(&delta.maintenance);
        if let Some(store) = &mut self.hints {
            store.advance_epoch();
        }
        self.contacts_series
            .push(self.now, self.total_contacts() as f64);
    }

    /// The per-shard body of a validation round: validate every node of the
    /// span, then (throttled) re-select. Touches only shard-owned state and
    /// the immutable network; emits its message/maintenance counters as a
    /// delta for in-order merging.
    fn validate_span(
        net: &Network,
        cfg: &CardConfig,
        view: &mut ShardView<'_>,
        at: SimTime,
        bucket_width: SimDuration,
    ) -> ShardDelta {
        let mut delta = ShardDelta {
            stats: MsgStats::new(bucket_width),
            maintenance: MaintenanceTotals::default(),
        };
        for k in 0..view.contacts.len() {
            let node = NodeId::from(view.start + k);
            let report =
                validate_contacts(net, cfg, node, &mut view.contacts[k], &mut delta.stats, at);
            delta.maintenance.absorb(&report);
            if view.contacts[k].len() >= cfg.target_contacts {
                view.backoff_level[k] = 0;
                view.backoff_remaining[k] = 0;
                continue;
            }
            if view.backoff_remaining[k] > 0 {
                view.backoff_remaining[k] -= 1;
                continue;
            }
            let before = view.contacts[k].len();
            select_contacts(
                net,
                cfg,
                node,
                &mut view.contacts[k],
                &mut view.rngs[k],
                &mut delta.stats,
                at,
                cfg.selection_walks_per_round,
                view.scratch,
            );
            if view.contacts[k].len() > before {
                view.backoff_level[k] = 0;
                view.backoff_remaining[k] = 0;
            } else {
                view.backoff_level[k] = (view.backoff_level[k] + 1).min(MAX_BACKOFF_LEVEL);
                view.backoff_remaining[k] = (1u32 << view.backoff_level[k]) - 1;
            }
        }
        delta
    }

    /// Issue a resource-discovery query (§III.C.4) from `source` for
    /// `target`, escalating depth up to `cfg.depth`. Runs allocation-free
    /// on the world's first query scratch; batches should prefer
    /// [`CardWorld::query_all`]. With the route-hint cache enabled, the
    /// cache is consulted first and deposits from a resolved query are
    /// applied immediately (live queries warm the very next call).
    pub fn query(&mut self, source: NodeId, target: NodeId) -> QueryOutcome {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            now,
            query_scratch,
            hints,
            hint_stats,
            hint_deposits,
            ..
        } = self;
        match hints {
            Some(store) => {
                hint_deposits.clear();
                let out = {
                    let mut ctx = HintContext {
                        store,
                        stats: hint_stats,
                        deposits: hint_deposits,
                    };
                    dsq_query_hinted(
                        net,
                        contacts,
                        &mut ctx,
                        source,
                        target,
                        cfg.depth,
                        stats,
                        *now,
                        &mut query_scratch[0],
                    )
                };
                Self::apply_deposits(store, hint_stats, hint_deposits);
                out
            }
            None => dsq_query(
                net,
                contacts,
                source,
                target,
                cfg.depth,
                stats,
                *now,
                &mut query_scratch[0],
            ),
        }
    }

    /// Issue an anycast resource query (§III.C.4 with a resource target)
    /// from `source`, escalating up to `cfg.depth` and consulting the
    /// route-hint cache when enabled (hints are keyed by the resource, so
    /// any replica's answer warms later queries for it).
    pub fn query_resource(
        &mut self,
        registry: &ResourceRegistry,
        source: NodeId,
        resource: ResourceId,
    ) -> QueryOutcome {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            now,
            query_scratch,
            hints,
            hint_stats,
            hint_deposits,
            ..
        } = self;
        match hints {
            Some(store) => {
                hint_deposits.clear();
                let out = {
                    let mut ctx = HintContext {
                        store,
                        stats: hint_stats,
                        deposits: hint_deposits,
                    };
                    resource_query_hinted(
                        net,
                        contacts,
                        registry,
                        &mut ctx,
                        source,
                        resource,
                        cfg.depth,
                        stats,
                        *now,
                        &mut query_scratch[0],
                    )
                };
                Self::apply_deposits(store, hint_stats, hint_deposits);
                out
            }
            None => resource_query(
                net,
                contacts,
                registry,
                source,
                resource,
                cfg.depth,
                stats,
                *now,
                &mut query_scratch[0],
            ),
        }
    }

    /// Run a batch of queries — one DSQ per `(source, target)` pair,
    /// escalating up to `cfg.depth` — fanned out over the protocol shards
    /// (the *pair list* is sharded; see the module docs), returning the
    /// outcomes in pair order. With the route-hint cache disabled this is
    /// exactly [`CardWorld::query_all_cache_off`]; with it enabled the
    /// sweep consults a store *frozen* for the whole parallel phase and
    /// applies the shards' deposit logs in shard order afterwards, so
    /// either way results and statistics are bit-identical at any worker
    /// or shard count (the cache-off path additionally equals
    /// [`CardWorld::query_all_serial`]).
    pub fn query_all(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        if self.hints.is_some() {
            self.query_all_hinted(pairs)
        } else {
            self.query_all_cache_off(pairs)
        }
    }

    /// The retained cache-off sweep — the §V baseline the hinted sweep is
    /// measured against, and the path [`CardWorld::query_all`] takes when
    /// hints are disabled. Message counters land in per-shard [`MsgStats`]
    /// deltas merged in shard order, so results and statistics are
    /// bit-identical to [`CardWorld::query_all_serial`] at any worker or
    /// shard count. Never touches the hint store, even when one is
    /// enabled.
    pub fn query_all_cache_off(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            now,
            query_scratch,
            ..
        } = self;
        let at = *now;
        let depth = cfg.depth;
        let spans = shard_spans(pairs.len(), query_scratch.len());
        // Each shard owns its span of the pair list, the matching span of
        // the output buffer (written in place — no per-shard collection),
        // and one walk scratch.
        let mut out: Vec<QueryOutcome> = vec![
            QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            };
            pairs.len()
        ];
        let mut shards = Vec::with_capacity(spans.len());
        let mut out_rest: &mut [QueryOutcome] = &mut out;
        let mut scratches = query_scratch.iter_mut();
        for span in spans {
            let (slots, rest) = out_rest.split_at_mut(span.end - span.start);
            out_rest = rest;
            shards.push((
                &pairs[span],
                slots,
                scratches.next().expect("span count exceeds scratch count"),
            ));
        }
        let deltas = parallel_shard_map(&mut shards, |_, (pairs, slots, scratch)| {
            // The shard's message delta: every query lands at the same
            // instant, so two counters recorded in bulk afterwards produce
            // buckets bit-identical to per-query recording.
            let mut dsq = 0u64;
            let mut reply = 0u64;
            for (slot, &(s, t)) in slots.iter_mut().zip(pairs.iter()) {
                let o = dsq_query_unrecorded(net, contacts, s, t, depth, scratch);
                dsq += o.query_msgs;
                reply += o.reply_msgs;
                *slot = o;
            }
            (dsq, reply)
        });
        for (dsq, reply) in deltas {
            stats.record_n(at, MsgKind::Dsq, dsq);
            stats.record_n(at, MsgKind::DsqReply, reply);
        }
        out
    }

    /// The hinted sharded sweep behind [`CardWorld::query_all`]. Shards
    /// read a store frozen for the whole parallel phase (every query of
    /// the sweep sees the same cache — deposits become visible to the
    /// *next* sweep, exactly as in a batch of concurrently in-flight
    /// queries) and log their deposits plus [`HintStats`] deltas, which
    /// are applied and merged in shard order (= pair order) afterwards.
    /// Outcomes, statistics, and the resulting store are therefore a pure
    /// function of `(network, tables, store, pairs)` — bit-identical at
    /// any worker or shard count (pinned by `tests/hint_cache.rs`).
    fn query_all_hinted(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            now,
            query_scratch,
            hints,
            hint_stats,
            ..
        } = self;
        let store = hints.as_mut().expect("hinted sweep without a store");
        let at = *now;
        let depth = cfg.depth;
        let spans = shard_spans(pairs.len(), query_scratch.len());
        let mut out: Vec<QueryOutcome> = vec![
            QueryOutcome {
                found: false,
                depth_used: 0,
                query_msgs: 0,
                reply_msgs: 0,
            };
            pairs.len()
        ];
        let mut shards = Vec::with_capacity(spans.len());
        let mut out_rest: &mut [QueryOutcome] = &mut out;
        let mut scratches = query_scratch.iter_mut();
        for span in spans {
            let (slots, rest) = out_rest.split_at_mut(span.end - span.start);
            out_rest = rest;
            shards.push((
                &pairs[span],
                slots,
                scratches.next().expect("span count exceeds scratch count"),
            ));
        }
        let frozen: &HintStore = store;
        let deltas = parallel_shard_map(&mut shards, |_, (pairs, slots, scratch)| {
            let mut dsq = 0u64;
            let mut reply = 0u64;
            let mut shard_stats = HintStats::default();
            let mut deposits: Vec<HintDeposit> = Vec::new();
            for (slot, &(s, t)) in slots.iter_mut().zip(pairs.iter()) {
                let mut ctx = HintContext {
                    store: frozen,
                    stats: &mut shard_stats,
                    deposits: &mut deposits,
                };
                let o = dsq_query_hinted_unrecorded(net, contacts, &mut ctx, s, t, depth, scratch);
                dsq += o.query_msgs;
                reply += o.reply_msgs;
                *slot = o;
            }
            (dsq, reply, shard_stats, deposits)
        });
        for (dsq, reply, shard_stats, deposits) in &deltas {
            stats.record_n(at, MsgKind::Dsq, *dsq);
            stats.record_n(at, MsgKind::DsqReply, *reply);
            hint_stats.merge(shard_stats);
            Self::apply_deposits(store, hint_stats, deposits);
        }
        out
    }

    /// Serial reference for [`CardWorld::query_all`]: the same queries one
    /// at a time on the caller's thread, recording straight into the
    /// world's statistics. Kept (like the `*_serial` protocol sweeps) as
    /// the equivalence anchor for `tests/query_engine.rs` and the
    /// `query_sweep/*` benches.
    pub fn query_all_serial(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<QueryOutcome> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    /// Reachability distribution at contact depth `depth` (Figs 5–9).
    pub fn reachability_summary(&self, depth: u16) -> ReachabilitySummary {
        ReachabilitySummary::compute(&self.net, &self.contacts, depth)
    }

    /// Run the mobile protocol loop for `duration`: mobility ticks every
    /// `cfg.mobility_tick`, validation rounds every `cfg.validation_period`
    /// (offset by 1 µs so coincident mobility updates apply first).
    ///
    /// Virtual time (`now()`), statistics and the contacts series all
    /// advance; calling `run_mobile` again continues the same timeline.
    pub fn run_mobile(&mut self, model: &mut dyn MobilityModel, duration: SimDuration) {
        let base = self.now;
        let mut engine: Engine<SimEvent> = Engine::with_horizon(SimTime::ZERO + duration);
        if !model.is_static() {
            engine.schedule_at(
                SimTime::ZERO + self.cfg.mobility_tick,
                SimEvent::MobilityTick,
            );
        }
        // First round effectively at t=0 (selection starts immediately),
        // then every period; the 1 µs offset makes coincident mobility
        // ticks apply before the round.
        engine.schedule_at(
            SimTime::ZERO + SimDuration::from_micros(1),
            SimEvent::ValidationRound,
        );

        while let Some((t, ev)) = engine.next_event() {
            self.now = base + t.since(SimTime::ZERO);
            match ev {
                SimEvent::MobilityTick => {
                    self.net.advance(model, self.cfg.mobility_tick);
                    // Mobility invalidation: hints *held at* nodes whose
                    // neighborhood changed point along links that may be
                    // gone, so evict them eagerly. Correctness never
                    // depends on this — a surviving stale hint is caught by
                    // the probe's live contact-table check — it just keeps
                    // the stale_contact miss rate down under churn.
                    if let Some(store) = &mut self.hints {
                        match self.net.dirty_report() {
                            DirtyReport::All => {
                                self.hint_stats.evicted_mobility += store.invalidate_all() as u64;
                            }
                            DirtyReport::Exact(dirty) => {
                                for &node in dirty {
                                    self.hint_stats.evicted_mobility +=
                                        store.invalidate_node(node) as u64;
                                }
                            }
                        }
                    }
                    engine.schedule_in(self.cfg.mobility_tick, SimEvent::MobilityTick);
                }
                SimEvent::ValidationRound => {
                    self.validation_round();
                    engine.schedule_in(self.cfg.validation_period, SimEvent::ValidationRound);
                }
            }
        }
        self.now = base + duration;
    }

    // -----------------------------------------------------------------
    // Event-driven pipeline hooks (see `crate::events::EventDriver`).
    //
    // `run_mobile` above is the retained tick-synchronous reference; the
    // methods below expose its per-event bodies so the driver can invoke
    // them from an externally-owned schedule. Each one must stay
    // bit-identical to the corresponding arm of `run_mobile` (plus the
    // standing-query and audit extensions, which both drive modes share),
    // which `tests/event_equivalence.rs` pins.
    // -----------------------------------------------------------------

    /// Advance the virtual clock to `t` (event delivery). Never rewinds.
    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "virtual time must not rewind");
        self.now = t;
    }

    /// Mutable node positions for the driver's per-region mobility
    /// advances; every mutation must be followed by
    /// [`CardWorld::event_mobility_refresh`] with the mover report.
    pub(crate) fn positions_mut(&mut self) -> &mut [net_topology::geometry::Point2] {
        self.net.positions_mut()
    }

    /// The post-motion half of a mobility tick, factored out of
    /// [`CardWorld::run_mobile`]'s `MobilityTick` arm: refresh connectivity
    /// around `movers`, evict route hints held at dirty nodes, revalidate
    /// the standing queries whose chains the dirty set touches, and (only
    /// when something moved — so both drive modes advance the sampling
    /// cursor identically) run the sampled grid-residency audit. Returns
    /// the number of audit violations (0 in a healthy pipeline).
    pub fn event_mobility_refresh(&mut self, movers: &[NodeId], audit_samples: usize) -> usize {
        self.net.refresh_movers(movers);
        if let Some(store) = &mut self.hints {
            match self.net.dirty_report() {
                DirtyReport::All => {
                    self.hint_stats.evicted_mobility += store.invalidate_all() as u64;
                }
                DirtyReport::Exact(dirty) => {
                    for &node in dirty {
                        self.hint_stats.evicted_mobility += store.invalidate_node(node) as u64;
                    }
                }
            }
        }
        if !self.standing.is_empty() {
            match self.net.dirty_report() {
                DirtyReport::All => self.standing.mark_all(),
                DirtyReport::Exact(dirty) => {
                    for &node in dirty {
                        self.standing.mark_node_dirty(node);
                    }
                }
            }
            self.standing_revalidate_marked();
        }
        if movers.is_empty() || audit_samples == 0 {
            0
        } else {
            self.net.audit_grid_residency(audit_samples)
        }
    }

    /// A validation round plus the standing-query recheck: maintenance may
    /// rewrite contact tables wholesale, so every standing chain is marked
    /// and revalidated (broken queries use the round as their retry
    /// heartbeat).
    pub fn event_validation_round(&mut self) {
        self.validation_round();
        if !self.standing.is_empty() {
            self.standing.mark_all();
            self.standing_revalidate_marked();
        }
    }

    /// Register a standing subscription from `source` for `target` and
    /// resolve it immediately (a fresh escalation, recorded as
    /// `StandingDsq`/`StandingReply` messages). Returns the query id; the
    /// subscription is kept resolved by the event pipeline from here on.
    pub fn standing_register(&mut self, source: NodeId, target: NodeId) -> u32 {
        let id = self.standing.register(source, target, self.now);
        self.standing_resolve(id, true);
        id
    }

    /// The standing-query table (chains, states, lifecycle counters).
    pub fn standing_queries(&self) -> &StandingQueries {
        &self.standing
    }

    /// Resolve (or re-resolve) standing query `id`: depth-0 if the target
    /// sits in the source's own neighborhood, otherwise a full escalation
    /// whose answer chain is captured from the walk's parent pointers.
    fn standing_resolve(&mut self, id: u32, initial: bool) {
        let CardWorld {
            net,
            cfg,
            contacts,
            stats,
            now,
            query_scratch,
            standing,
            ..
        } = self;
        let (source, target) = {
            let q = standing.get(id);
            (q.source, q.target)
        };
        let tables = net.tables();
        if tables.of(source).contains(target) {
            standing.set_resolved(id, vec![source], *now, initial);
            return;
        }
        let scratch = &mut query_scratch[0];
        let mut answer = None;
        let out = escalate_unrecorded(
            net.node_count(),
            contacts,
            source,
            cfg.depth,
            scratch,
            |c| {
                let hit = tables.of(c).contains(target);
                if hit {
                    answer = Some(c);
                }
                hit
            },
        );
        stats.record_n(*now, MsgKind::StandingDsq, out.query_msgs);
        stats.record_n(*now, MsgKind::StandingReply, out.reply_msgs);
        match answer {
            Some(c) => {
                let mut path = Vec::new();
                scratch.walk_path(c, &mut path);
                standing.set_resolved(id, path, *now, initial);
            }
            None => standing.set_failed(id),
        }
    }

    /// Probe standing query `id`'s cached chain against the live contact
    /// and neighborhood tables: each consecutive pair must still be a live
    /// contact (charging its path hops as probe messages), and the target
    /// must still sit in the tail's neighborhood (a free local check).
    fn standing_probe(&self, id: u32) -> (bool, u64) {
        let q = self.standing.get(id);
        let mut msgs = 0u64;
        for w in q.path.windows(2) {
            match self.contacts[w[0].index()].get(w[1]) {
                Some(c) => msgs += c.hops() as u64,
                None => return (false, msgs),
            }
        }
        let last = *q.path.last().expect("resolved chain is non-empty");
        (self.net.tables().of(last).contains(q.target), msgs)
    }

    /// Drain the pending revalidation marks in id order: probe resolved
    /// chains (breaking failures), then immediately re-resolve everything
    /// broken. A failed re-resolve stays broken until the next mark.
    fn standing_revalidate_marked(&mut self) {
        if !self.standing.has_marks() {
            return;
        }
        let mut ids = std::mem::take(&mut self.standing_ids);
        self.standing.take_marked(&mut ids);
        for &id in &ids {
            self.standing.note_revalidation();
            if self.standing.get(id).is_resolved() {
                let (valid, probe_msgs) = self.standing_probe(id);
                self.stats
                    .record_n(self.now, MsgKind::StandingProbe, probe_msgs);
                if valid {
                    continue;
                }
                self.standing.record_break(id, self.now);
            }
            self.standing_resolve(id, false);
        }
        ids.clear();
        self.standing_ids = ids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionMethod;
    use mobility::statics::StaticModel;
    use mobility::waypoint::RandomWaypoint;

    fn scenario() -> Scenario {
        Scenario::new(150, 500.0, 500.0, 60.0)
    }

    fn cfg() -> CardConfig {
        CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(8)
            .with_target_contacts(4)
            .with_seed(21)
    }

    #[test]
    fn build_and_select() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert_eq!(w.network().node_count(), 150);
        assert_eq!(w.total_contacts(), 0);
        w.select_all_contacts();
        assert!(
            w.total_contacts() > 0,
            "a 150-node network must yield contacts"
        );
        assert!(w.mean_contacts() <= 4.0);
        assert!(w.stats().total(MsgKind::Csq) > 0);
    }

    #[test]
    fn selection_raises_reachability() {
        let mut w = CardWorld::build(&scenario(), cfg());
        let before = w.reachability_summary(1).mean_pct;
        w.select_all_contacts();
        let after = w.reachability_summary(1).mean_pct;
        assert!(
            after > before,
            "contacts must increase mean reachability ({before:.1}% -> {after:.1}%)"
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut w = CardWorld::build(&scenario(), cfg());
            w.select_all_contacts();
            let mut model = RandomWaypoint::new(
                150,
                w.network().field(),
                1.0,
                10.0,
                0.0,
                SeedSplitter::new(w.config().seed).stream("mobility", 0),
            );
            w.run_mobile(&mut model, SimDuration::from_secs(3));
            (
                w.total_contacts(),
                w.stats().grand_total(),
                w.maintenance_totals().clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mobile_run_populates_pipeline_counters() {
        let mut w = CardWorld::build(&scenario(), cfg());
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            0.5,
            2.0,
            0.0,
            SeedSplitter::new(7).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(2));
        let c = w.pipeline_counters();
        assert!(
            c.movers_reported > 0,
            "zero-pause RWP ticks must report movers"
        );
        // the accessor must surface the network's own counters, not a copy
        // that can drift
        assert_eq!(c, w.network().pipeline_counters());
        assert_eq!(c.changed, w.network().last_changed_count());
        assert_eq!(c.dirty, w.network().last_dirty_count());
    }

    #[test]
    fn static_run_keeps_contacts_and_counts_maintenance() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let contacts_before = w.total_contacts();
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(4));
        // static topology: nothing lost, nothing out of range; re-selection
        // passes (rule 5) may only ADD contacts for nodes still below NoC
        assert!(w.total_contacts() >= contacts_before);
        assert_eq!(w.maintenance_totals().lost, 0);
        assert_eq!(w.maintenance_totals().dropped_out_of_range, 0);
        assert!(
            w.stats().total(MsgKind::Validation) > 0,
            "validation still polls"
        );
        // validation rounds happened at ~0,1,2,3 s (round at 4s is at the horizon)
        assert_eq!(w.contacts_series().len(), 4);
        assert_eq!(w.now(), SimTime::from_secs(4));
    }

    #[test]
    fn mobile_run_loses_and_reselects() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            10.0,
            20.0,
            0.0,
            SeedSplitter::new(7).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(6));
        let totals = w.maintenance_totals();
        assert!(
            totals.lost + totals.dropped_out_of_range > 0,
            "fast mobility should break some contact paths"
        );
        assert!(w.stats().total(MsgKind::Validation) > 0);
        // re-selection kept tables alive
        assert!(w.total_contacts() > 0);
    }

    #[test]
    fn local_recovery_heals_under_mild_mobility() {
        let mut config = cfg();
        config.validation_period = SimDuration::from_secs(1);
        let mut w = CardWorld::build(&scenario(), config);
        w.select_all_contacts();
        let mut model = RandomWaypoint::new(
            150,
            w.network().field(),
            3.0,
            8.0,
            0.0,
            SeedSplitter::new(9).stream("mobility", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(8));
        assert!(
            w.maintenance_totals().recovered > 0,
            "mild mobility should exercise local recovery"
        );
    }

    #[test]
    fn timeline_continues_across_runs() {
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(2));
        assert_eq!(w.now(), SimTime::from_secs(2));
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(2));
        assert_eq!(w.now(), SimTime::from_secs(4));
        // series timestamps are strictly increasing across the two runs
        let times: Vec<_> = w
            .contacts_series()
            .points()
            .iter()
            .map(|(t, _)| *t)
            .collect();
        for pair in times.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn query_uses_world_state() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
        w.select_all_contacts();
        // find some target beyond the source's neighborhood but reachable
        let source = NodeId::new(0);
        let reach =
            crate::reachability::reachability_set(w.network(), w.contact_tables(), source, 3);
        let nb = w.network().tables().of(source);
        let beyond: Vec<usize> = reach
            .iter()
            .filter(|&i| !nb.contains(NodeId::from(i)))
            .collect();
        if let Some(&target) = beyond.first() {
            let out = w.query(source, NodeId::from(target));
            assert!(
                out.found,
                "target inside the depth-3 reach set must be found"
            );
            assert!(out.depth_used >= 1);
            assert!(out.query_msgs > 0);
        }
    }

    #[test]
    fn query_all_matches_serial_and_per_query_paths() {
        let pairs: Vec<(NodeId, NodeId)> = (0..60u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 37 + 5) % 150)))
            .collect();
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3));
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w.select_all_contacts();
            w
        };
        let mut serial = build(Some(1));
        let expected_outcomes = serial.query_all_serial(&pairs);
        let expected_series = serial.stats().series_where(|_| true);
        for shards in [None, Some(1), Some(3), Some(60), Some(500)] {
            let mut par = build(shards);
            let outcomes = par.query_all(&pairs);
            assert_eq!(outcomes, expected_outcomes, "shards {shards:?}");
            assert_eq!(
                par.stats().series_where(|_| true),
                expected_series,
                "stats diverged at shard count {shards:?}"
            );
        }
        // and the one-at-a-time path agrees too
        let mut loose = build(None);
        let one_by_one: Vec<QueryOutcome> = pairs.iter().map(|&(s, t)| loose.query(s, t)).collect();
        assert_eq!(one_by_one, expected_outcomes);
    }

    #[test]
    fn query_all_handles_empty_and_repeated_sweeps() {
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(2));
        w.select_all_contacts();
        assert!(w.query_all(&[]).is_empty());
        let pairs = vec![(NodeId::new(0), NodeId::new(100)); 8];
        let first = w.query_all(&pairs);
        let second = w.query_all(&pairs); // scratch reuse across sweeps
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "network zone radius")]
    fn radius_mismatch_rejected() {
        let net = Network::from_scenario(&scenario(), 3, 1);
        let _ = CardWorld::from_network(net, cfg()); // cfg has R=2
    }

    #[test]
    fn saturated_nodes_back_off_selection() {
        // A tiny NoC-unreachable configuration: after a few fruitless
        // rounds, selection traffic per round must fall toward zero even
        // though tables stay below NoC.
        let mut config = cfg().with_target_contacts(50); // far above capacity
        config.validation_period = SimDuration::from_secs(1);
        let mut w = CardWorld::build(&scenario(), config);
        w.select_all_contacts();
        // run long enough for the backoff to reach its cap
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(12));
        let early: u64 = (0..3)
            .map(|b| w.stats().in_bucket_where(b, MsgKind::is_selection))
            .sum();
        let late: u64 = (3..6)
            .map(|b| w.stats().in_bucket_where(b, MsgKind::is_selection))
            .sum();
        assert!(
            late < early / 2,
            "backoff should quiesce fruitless selection (early {early}, late {late})"
        );
        assert!(w.mean_contacts() < 50.0, "capacity is genuinely below NoC");
    }

    #[test]
    fn backoff_resets_when_a_contact_is_found() {
        // With NoC at capacity, nodes that reach NoC keep level 0: the
        // series stays stable and the maintenance counters keep moving.
        let mut w = CardWorld::build(&scenario(), cfg());
        w.select_all_contacts();
        let before = w.maintenance_totals().validated;
        w.run_mobile(&mut StaticModel, SimDuration::from_secs(3));
        assert!(w.maintenance_totals().validated > before);
    }

    /// Per-node contact (id, path) lists — the full observable table state.
    type TableSnapshot = Vec<Vec<(NodeId, Vec<NodeId>)>>;

    /// Full comparable state snapshot: contact tables (ids + paths),
    /// backoff state, stats totals and bucket series, maintenance totals.
    fn snapshot(w: &CardWorld) -> (TableSnapshot, Vec<u64>, MaintenanceTotals) {
        let tables: TableSnapshot = w
            .contact_tables()
            .iter()
            .map(|t| {
                t.contacts()
                    .iter()
                    .map(|c| (c.id, c.path.clone()))
                    .collect()
            })
            .collect();
        let series = w.stats().series_where(|_| true);
        (tables, series, w.maintenance_totals().clone())
    }

    #[test]
    fn parallel_sweeps_match_serial_reference() {
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg());
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w
        };
        let mut serial = build(Some(1));
        serial.select_all_contacts_serial();
        serial.validation_round_serial();
        serial.validation_round_serial();
        let expected = snapshot(&serial);
        for shards in [None, Some(1), Some(3), Some(150), Some(1000)] {
            let mut par = build(shards);
            par.select_all_contacts();
            par.validation_round();
            par.validation_round();
            assert_eq!(
                snapshot(&par),
                expected,
                "sharded sweep diverged at shard count {shards:?}"
            );
        }
    }

    #[test]
    fn shard_count_is_settable_and_bounded() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert!(w.shard_count() >= 1);
        w.set_shard_count(7);
        assert_eq!(w.shard_count(), 7);
        w.select_all_contacts();
        assert!(w.total_contacts() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one protocol shard")]
    fn zero_shards_rejected() {
        CardWorld::build(&scenario(), cfg()).set_shard_count(0);
    }

    #[test]
    fn hints_toggle_round_trip() {
        let mut w = CardWorld::build(&scenario(), cfg());
        assert!(!w.hints_enabled());
        assert!(w.hint_store().is_none());
        w.set_hints_enabled(true);
        assert!(w.hints_enabled());
        let store = w.hint_store().expect("enabled world has a store");
        assert_eq!(store.node_count(), 150);
        assert!(store.is_empty());
        w.set_hints_enabled(true); // idempotent: must not rebuild/clear
        w.set_hints_enabled(false);
        assert!(!w.hints_enabled());
        // a world built with hints in the config starts enabled
        let w2 = CardWorld::build(&scenario(), cfg().with_hints(true));
        assert!(w2.hints_enabled());
    }

    #[test]
    fn hinted_queries_agree_with_cache_off_on_found() {
        // Hints may only change the *cost* of a query, never its answer:
        // across repeated (warming) sweeps, every outcome's `found` and
        // `depth_used`-reachability verdict must match the cache-off path.
        let pairs: Vec<(NodeId, NodeId)> = (0..80u32)
            .map(|i| (NodeId::new(i % 150), NodeId::new((i * 13 + 31) % 150)))
            .collect();
        let mut base = CardWorld::build(&scenario(), cfg().with_depth(3));
        base.select_all_contacts();
        let mut hinted = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        hinted.select_all_contacts();
        let expected = base.query_all_cache_off(&pairs);
        for sweep in 0..3 {
            let got = hinted.query_all(&pairs);
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(g.found, e.found, "answer flipped on sweep {sweep}");
            }
        }
        let stats = hinted.hint_stats();
        assert!(stats.lookups > 0, "hinted sweeps must consult the cache");
        assert!(stats.deposits > 0, "resolved queries must deposit hints");
        assert!(
            stats.hits > 0,
            "the repeat sweeps must hit deposited hints: {stats:?}"
        );
    }

    #[test]
    fn hinted_sweep_is_shard_count_invariant() {
        let pairs: Vec<(NodeId, NodeId)> = (0..60u32)
            .map(|i| (NodeId::new((i * 7) % 150), NodeId::new((i * 53 + 2) % 150)))
            .collect();
        let build = |shards: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
            if let Some(k) = shards {
                w.set_shard_count(k);
            }
            w.select_all_contacts();
            w
        };
        let mut reference = build(Some(1));
        let warm = reference.query_all(&pairs);
        let warm2 = reference.query_all(&pairs);
        let expected_stats = reference.hint_stats().clone();
        let expected_series = reference.stats().series_where(|_| true);
        for shards in [None, Some(3), Some(60), Some(500)] {
            let mut par = build(shards);
            assert_eq!(par.query_all(&pairs), warm, "cold sweep at {shards:?}");
            assert_eq!(par.query_all(&pairs), warm2, "warm sweep at {shards:?}");
            assert_eq!(
                par.hint_stats(),
                &expected_stats,
                "hint counters diverged at shard count {shards:?}"
            );
            assert_eq!(
                par.stats().series_where(|_| true),
                expected_series,
                "message series diverged at shard count {shards:?}"
            );
        }
    }

    #[test]
    fn live_queries_warm_the_very_next_call() {
        // The one-at-a-time path applies deposits immediately: repeating
        // the same resolved query must hit the cache on the second call
        // and spend no more messages than the first.
        let mut w = CardWorld::build(&scenario(), cfg().with_depth(3).with_hints(true));
        w.select_all_contacts();
        let reach = crate::reachability::reachability_set(
            w.network(),
            w.contact_tables(),
            NodeId::new(0),
            3,
        );
        let nb = w.network().tables().of(NodeId::new(0));
        let Some(target) = reach
            .iter()
            .map(NodeId::from)
            .find(|&t| !nb.contains(t) && t != NodeId::new(0))
        else {
            return; // topology left nothing beyond the zone — vacuous
        };
        let first = w.query(NodeId::new(0), target);
        assert!(first.found);
        let hits_before = w.hint_stats().hits;
        let second = w.query(NodeId::new(0), target);
        assert!(second.found);
        assert!(
            w.hint_stats().hits > hits_before,
            "second identical query must hit the cache: {:?}",
            w.hint_stats()
        );
        assert!(
            second.query_msgs <= first.query_msgs,
            "a cache hit may not cost more ({} > {})",
            second.query_msgs,
            first.query_msgs
        );
    }

    #[test]
    fn em_vs_pm_reachability_order() {
        // The headline Fig 3 claim, in miniature: EM ≥ PM in mean reachability.
        let em = {
            let mut w = CardWorld::build(&scenario(), cfg().with_method(SelectionMethod::Edge));
            w.select_all_contacts();
            w.reachability_summary(1).mean_pct
        };
        let pm = {
            let mut w = CardWorld::build(
                &scenario(),
                cfg().with_method(SelectionMethod::ProbabilisticEq2),
            );
            w.select_all_contacts();
            w.reachability_summary(1).mean_pct
        };
        assert!(
            em >= pm * 0.95,
            "EM ({em:.1}%) should not trail PM ({pm:.1}%) meaningfully"
        );
    }
}

//! Reachability analysis — §III.B's metric and the §IV.A figures.
//!
//! The reachability of a source is the fraction of the network it can reach
//! through CARD: its own R-hop neighborhood plus the neighborhoods of its
//! contacts, contacts-of-contacts, … out to D levels. Figs 5–9 plot the
//! *distribution* of this value over all nodes as a histogram with 5%
//! buckets; this module computes both the per-node values and the
//! histograms.

use manet_routing::network::Network;
use net_topology::node::NodeId;
use sim_core::stats::PercentHistogram;
use sim_core::util::BitSet;
use std::cell::RefCell;

use crate::contact::TableSource;
use crate::query::QueryScratch;

/// Histogram bucket width used by every reachability figure (percent).
pub const REACH_BUCKET_PCT: f64 = 5.0;

/// The set of nodes `source` can reach at contact depth `depth`, written
/// into `out` (cleared first): its neighborhood ∪ neighborhoods of
/// contacts up to `depth` levels.
///
/// This is the allocation-free core: the contact walk runs on the shared
/// level-synchronous engine of [`QueryScratch`] (the same traversal a DSQ
/// performs — the set it accumulates is exactly the region a depth-`depth`
/// query consults), and `out` is reused by callers that sweep many
/// sources ([`ReachabilitySummary::compute`] runs all N sources on one
/// scratch and one bitset).
///
/// # Panics
/// Panics if `out` was built for fewer than `net.node_count()` nodes.
pub fn reachability_set_into<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    depth: u16,
    scratch: &mut QueryScratch,
    out: &mut BitSet,
) {
    let tables = net.tables();
    out.clear();
    for m in tables.of(source).iter_members() {
        out.insert(m.index());
    }

    // Level-synchronous walk of the contact graph on the query engine;
    // every newly consumed contact unions its neighborhood in. Messages
    // are not charged (this is the paper's §III.B *metric*, not a query).
    scratch.begin(net.node_count(), source);
    let mut no_msgs = 0u64;
    for _ in 0..depth {
        if scratch.exhausted() {
            break;
        }
        scratch.advance_level::<(), _>(&contact_tables, &mut no_msgs, |c, _| {
            for m in tables.of(c).iter_members() {
                out.insert(m.index());
            }
            None
        });
    }
}

thread_local! {
    /// Shared walk scratch for the owned-result convenience wrapper below.
    static LOCAL_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// The set of nodes `source` can reach at contact depth `depth`
/// (its neighborhood ∪ neighborhoods of contacts up to `depth` levels).
///
/// The returned [`BitSet`] is a *per-query* accumulator (one O(N)-bit set
/// alive at a time); the neighborhoods themselves store only O(zone)
/// sorted member arrays, so unioning a zone in is O(zone size) inserts.
/// The walk itself runs allocation-free on a thread-local
/// [`QueryScratch`]; sweeps that cannot afford the output allocation
/// either should hold their own scratch and use [`reachability_set_into`].
pub fn reachability_set<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    depth: u16,
) -> BitSet {
    let mut set = BitSet::new(net.node_count());
    LOCAL_SCRATCH.with(|s| {
        reachability_set_into(
            net,
            contact_tables,
            source,
            depth,
            &mut s.borrow_mut(),
            &mut set,
        );
    });
    set
}

/// Reachability of `source` as a percentage of the network size.
pub fn reachability_pct<T: TableSource>(
    net: &Network,
    contact_tables: T,
    source: NodeId,
    depth: u16,
) -> f64 {
    let n = net.node_count();
    if n == 0 {
        return 0.0;
    }
    100.0 * reachability_set(net, contact_tables, source, depth).len() as f64 / n as f64
}

/// Network-wide reachability distribution (one observation per node).
#[derive(Clone, Debug)]
pub struct ReachabilitySummary {
    /// Mean reachability over all nodes, percent.
    pub mean_pct: f64,
    /// Per-node reachability, percent, indexed by node id.
    pub per_node_pct: Vec<f64>,
    /// 5%-bucket histogram (the y-axes of Figs 5–9).
    pub histogram: PercentHistogram,
}

impl ReachabilitySummary {
    /// Compute the distribution for every node at contact depth `depth`.
    ///
    /// One walk scratch and one accumulator bitset serve all N sources —
    /// the per-source work is the contact walk and the zone unions, with
    /// no per-source allocation (the old implementation allocated two
    /// O(N) vectors and a bitset per source: 2·N throwaway vectors per
    /// summary).
    pub fn compute<T: TableSource>(net: &Network, contact_tables: T, depth: u16) -> Self {
        let n = net.node_count();
        let mut histogram = PercentHistogram::new(REACH_BUCKET_PCT);
        let mut per_node_pct = Vec::with_capacity(n);
        let mut sum = 0.0;
        let mut scratch = QueryScratch::with_capacity(n);
        let mut set = BitSet::new(n);
        for source in NodeId::all(n) {
            reachability_set_into(net, &contact_tables, source, depth, &mut scratch, &mut set);
            let pct = 100.0 * set.len() as f64 / n as f64;
            histogram.record(pct);
            sum += pct;
            per_node_pct.push(pct);
        }
        ReachabilitySummary {
            mean_pct: if n == 0 { 0.0 } else { sum / n as f64 },
            per_node_pct,
            histogram,
        }
    }

    /// Fraction of nodes with reachability ≥ `threshold_pct` (the paper's
    /// "desirable region" of Fig 14 uses ≥ 50%).
    pub fn fraction_at_least(&self, threshold_pct: f64) -> f64 {
        if self.per_node_pct.is_empty() {
            return 0.0;
        }
        self.per_node_pct
            .iter()
            .filter(|&&p| p >= threshold_pct)
            .count() as f64
            / self.per_node_pct.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::{Contact, ContactTable};
    use net_topology::geometry::{Field, Point2};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 20-node line, 40 m spacing, range 50, R=2.
    fn line_net() -> Network {
        let positions: Vec<Point2> = (0..20)
            .map(|i| Point2::new(10.0 + 40.0 * i as f64, 10.0))
            .collect();
        Network::from_positions(Field::square(900.0), positions, 50.0, 2)
    }

    fn empty_tables(n: usize) -> Vec<ContactTable> {
        (0..n).map(|_| ContactTable::new()).collect()
    }

    #[test]
    fn no_contacts_reachability_is_neighborhood() {
        let net = line_net();
        let tables = empty_tables(20);
        let set = reachability_set(&net, &tables, n(0), 1);
        // nbhd of node 0 at R=2: {0,1,2} → 3/20 = 15%
        assert_eq!(set.len(), 3);
        assert!((reachability_pct(&net, &tables, n(0), 1) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn contact_extends_reachability() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        let set = reachability_set(&net, &tables, n(0), 1);
        // {0,1,2} ∪ nbhd(8) = {6,7,8,9,10} → 8 nodes
        assert_eq!(set.len(), 8);
        // the set always contains the full neighborhood
        for i in 0..3u32 {
            assert!(set.contains(i as usize));
        }
    }

    #[test]
    fn depth_two_includes_contacts_of_contacts() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        tables[8].add(Contact::new(n(16), (8..17).map(n).collect()));
        let d1 = reachability_set(&net, &tables, n(0), 1).len();
        let d2 = reachability_set(&net, &tables, n(0), 2).len();
        assert_eq!(d1, 8);
        assert_eq!(d2, 8 + 5, "level-2 contact adds nbhd(16) = {{14..18}}");
        // depth 3 with no level-3 contacts adds nothing
        let d3 = reachability_set(&net, &tables, n(0), 3).len();
        assert_eq!(d3, d2);
    }

    #[test]
    fn overlapping_contact_neighborhoods_do_not_double_count() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        tables[0].add(Contact::new(n(9), (0..10).map(n).collect()));
        let set = reachability_set(&net, &tables, n(0), 1);
        // nbhd(8)={6..10}, nbhd(9)={7..11}: union {6..11} (6 nodes) + {0,1,2}
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn contact_cycles_terminate() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        tables[8].add(Contact::new(n(0), (0..9).rev().map(n).collect()));
        let set = reachability_set(&net, &tables, n(0), 5);
        assert!(set.len() <= 20);
    }

    #[test]
    fn summary_statistics() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        let summary = ReachabilitySummary::compute(&net, &tables, 1);
        assert_eq!(summary.per_node_pct.len(), 20);
        assert_eq!(summary.histogram.total(), 20);
        // node 0: 40%; interior nodes without contacts: 25%; ends: 15%
        assert!((summary.per_node_pct[0] - 40.0).abs() < 1e-9);
        assert!(summary.mean_pct > 15.0 && summary.mean_pct < 40.0);
        assert_eq!(summary.fraction_at_least(0.0), 1.0);
        assert_eq!(summary.fraction_at_least(101.0), 0.0);
        let f40 = summary.fraction_at_least(40.0);
        assert!((f40 - 1.0 / 20.0).abs() < 1e-9, "only node 0 reaches 40%");
    }

    #[test]
    fn reused_scratch_and_bitset_match_fresh_runs() {
        let net = line_net();
        let mut tables = empty_tables(20);
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        tables[8].add(Contact::new(n(16), (8..17).map(n).collect()));
        let mut scratch = crate::query::QueryScratch::new();
        let mut set = BitSet::new(20);
        for depth in [0u16, 1, 2, 3] {
            for src in [0u32, 5, 8, 19] {
                reachability_set_into(&net, &tables, n(src), depth, &mut scratch, &mut set);
                let fresh = reachability_set(&net, &tables, n(src), depth);
                assert_eq!(
                    set.to_vec(),
                    fresh.to_vec(),
                    "source {src} depth {depth} diverged on reuse"
                );
            }
        }
    }

    #[test]
    fn reachability_bounded_by_network() {
        let net = line_net();
        let mut tables = empty_tables(20);
        // chain of contacts covering everything
        tables[0].add(Contact::new(n(8), (0..9).map(n).collect()));
        tables[8].add(Contact::new(n(16), (8..17).map(n).collect()));
        tables[16].add(Contact::new(n(19), (16..20).map(n).collect()));
        let pct = reachability_pct(&net, &tables, n(0), 10);
        assert!(pct <= 100.0);
    }
}

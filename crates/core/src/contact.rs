//! Contact entries and per-node contact tables.
//!
//! A contact is a node 2R‥r hops away, stored together with the *source
//! path* the CSQ traversed to reach it (§III.C.1 step 6: "the path to the
//! contact is returned and stored at the source node"). The path is what
//! maintenance validates and queries travel along.

use net_topology::node::NodeId;

/// One selected contact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contact {
    /// The contact node itself.
    pub id: NodeId,
    /// Source path, inclusive: `path[0]` is the source, `path.last()` is
    /// the contact. Hop length is `path.len() - 1`.
    pub path: Vec<NodeId>,
}

impl Contact {
    /// Create a contact with its source path.
    ///
    /// # Panics
    /// Panics unless the path starts somewhere, ends at `id`, and has at
    /// least one hop.
    pub fn new(id: NodeId, path: Vec<NodeId>) -> Self {
        assert!(path.len() >= 2, "contact path needs at least one hop");
        assert_eq!(*path.last().unwrap(), id, "path must end at the contact");
        Contact { id, path }
    }

    /// Hop count of the stored path.
    #[inline]
    pub fn hops(&self) -> u16 {
        (self.path.len() - 1) as u16
    }

    /// The source end of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.path[0]
    }
}

/// Read access to every node's [`ContactTable`], however the tables are
/// laid out in memory.
///
/// The query engine, reachability and resource layers are generic over
/// this trait so they can walk contact graphs stored either as one flat
/// slice/`Vec` (tests, benches, hand-built topologies) or as
/// shard-*owned* spans behind `CardWorld`'s sharded state model (where no
/// contiguous slice of all tables exists). Implementations must be pure
/// reads: a walk consults tables for many different nodes and the
/// sharded sweeps run those reads concurrently against frozen state.
pub trait TableSource {
    /// The contact table of node index `i`.
    fn table(&self, i: usize) -> &ContactTable;
}

impl TableSource for [ContactTable] {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        &self[i]
    }
}

impl TableSource for Vec<ContactTable> {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        &self[i]
    }
}

impl<T: TableSource + ?Sized> TableSource for &T {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        (**self).table(i)
    }
}

impl<T: TableSource + ?Sized> TableSource for &mut T {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        (**self).table(i)
    }
}

/// The contact table of one source node.
///
/// Besides the live contacts, the table carries two pieces of robustness
/// state used only under fault injection (both empty, and cost-free, in a
/// calm world):
///
/// * **tombstones** — contacts confirmed dead (crashed while listed here).
///   A tombstoned id is skipped by CSQ re-selection until its TTL, counted
///   in validation rounds, runs out; this stops a node from immediately
///   re-selecting a peer it just watched die.
/// * **retry state** — per-contact unacked-validation backoff. A contact
///   whose validation probe went unanswered is kept but *skipped* for
///   `2^level - 1` rounds (the same exponential shape as the table-wide
///   `backoff_remaining`/`backoff_level` selection backoff in `world.rs`);
///   each further miss bumps the level until a cap evicts the contact.
#[derive(Clone, Debug, Default)]
pub struct ContactTable {
    contacts: Vec<Contact>,
    /// `(dead contact, remaining TTL in validation rounds)`.
    tombstones: Vec<(NodeId, u32)>,
    /// `(contact, retry level, rounds left to skip)`.
    retries: Vec<(NodeId, u32, u32)>,
}

impl ContactTable {
    /// An empty table.
    pub fn new() -> Self {
        ContactTable::default()
    }

    /// Number of live contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True when no contacts are held.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// The contacts, in selection order.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Iterate over contact node ids (the CSQ `Contact_List`).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.contacts.iter().map(|c| c.id)
    }

    /// Is `node` already a contact?
    pub fn contains(&self, node: NodeId) -> bool {
        self.contacts.iter().any(|c| c.id == node)
    }

    /// The live contact entry for `node`, if it is (still) a contact —
    /// how hint probes resolve a cached next hop against current state
    /// (a departed contact makes the hint a `stale_contact` miss).
    pub fn get(&self, node: NodeId) -> Option<&Contact> {
        self.contacts.iter().find(|c| c.id == node)
    }

    /// Add a newly selected contact.
    ///
    /// # Panics
    /// Panics if `node` is already present (selection must not duplicate).
    pub fn add(&mut self, contact: Contact) {
        assert!(
            !self.contains(contact.id),
            "duplicate contact {:?}",
            contact.id
        );
        self.contacts.push(contact);
    }

    /// Remove a contact by id; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let before = self.contacts.len();
        self.contacts.retain(|c| c.id != node);
        self.contacts.len() != before
    }

    /// Replace the stored path of contact `node` (after local recovery
    /// re-routed it). No-op if the contact is gone.
    pub fn update_path(&mut self, node: NodeId, path: Vec<NodeId>) {
        if let Some(c) = self.contacts.iter_mut().find(|c| c.id == node) {
            debug_assert_eq!(*path.last().unwrap(), node);
            c.path = path;
        }
    }

    /// Drop every contact, tombstone and retry record (used when
    /// re-initializing a node, e.g. after a crash).
    pub fn clear(&mut self) {
        self.contacts.clear();
        self.tombstones.clear();
        self.retries.clear();
    }

    /// Mutable access for maintenance (retain-style filtering).
    pub(crate) fn contacts_mut(&mut self) -> &mut Vec<Contact> {
        &mut self.contacts
    }

    // ---- tombstones -----------------------------------------------------

    /// Record `node` as confirmed dead for `ttl` validation rounds: the
    /// contact (if present) and any retry state are dropped, and CSQ
    /// re-selection will skip the id until the tombstone decays. A repeat
    /// tombstone extends the TTL to at least `ttl`.
    ///
    /// # Panics
    /// Panics if `ttl` is zero (a zero-TTL tombstone is a no-op bug).
    pub fn tombstone(&mut self, node: NodeId, ttl: u32) {
        assert!(ttl > 0, "tombstone TTL must be at least one round");
        self.remove(node);
        self.clear_retry(node);
        if let Some(t) = self.tombstones.iter_mut().find(|t| t.0 == node) {
            t.1 = t.1.max(ttl);
        } else {
            self.tombstones.push((node, ttl));
        }
    }

    /// Is `node` currently tombstoned?
    pub fn is_tombstoned(&self, node: NodeId) -> bool {
        self.tombstones.iter().any(|t| t.0 == node)
    }

    /// The tombstones, in creation order, as `(node, remaining TTL)`.
    pub fn tombstones(&self) -> &[(NodeId, u32)] {
        &self.tombstones
    }

    /// Age every tombstone by one validation round, dropping the expired.
    pub fn decay_tombstones(&mut self) {
        for t in &mut self.tombstones {
            t.1 -= 1;
        }
        self.tombstones.retain(|t| t.1 > 0);
    }

    /// The largest remaining tombstone TTL (0 when none). The liveness
    /// contract asserts this never exceeds the configured TTL.
    pub fn max_tombstone_ttl(&self) -> u32 {
        self.tombstones.iter().map(|t| t.1).max().unwrap_or(0)
    }

    // ---- per-contact validation retry ----------------------------------

    /// Note an unacked validation probe to `node`: bump its retry level
    /// and schedule `2^level - 1` skipped rounds. Returns the new level
    /// (first miss returns 1).
    pub fn note_unacked(&mut self, node: NodeId) -> u32 {
        if let Some(r) = self.retries.iter_mut().find(|r| r.0 == node) {
            r.1 += 1;
            r.2 = (1u32 << r.1) - 1;
            r.1
        } else {
            self.retries.push((node, 1, 1));
            1
        }
    }

    /// If `node` is inside a retry-skip window, consume one round of it
    /// and return `true` (the caller must not probe the contact this
    /// round). Returns `false` when the contact is due for a retry.
    pub fn retry_skip(&mut self, node: NodeId) -> bool {
        if let Some(r) = self.retries.iter_mut().find(|r| r.0 == node) {
            if r.2 > 0 {
                r.2 -= 1;
                return true;
            }
        }
        false
    }

    /// The retry level of `node` (0 when no probe is outstanding).
    pub fn retry_level(&self, node: NodeId) -> u32 {
        self.retries.iter().find(|r| r.0 == node).map_or(0, |r| r.1)
    }

    /// Clear retry state for `node` (its validation was acked, or the
    /// contact was evicted).
    pub fn clear_retry(&mut self, node: NodeId) {
        self.retries.retain(|r| r.0 != node);
    }

    /// Number of contacts with an outstanding validation retry.
    pub fn retrying(&self) -> usize {
        self.retries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn chain(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn contact_path_accessors() {
        let c = Contact::new(n(5), chain(&[0, 2, 4, 5]));
        assert_eq!(c.hops(), 3);
        assert_eq!(c.source(), n(0));
        assert_eq!(c.id, n(5));
    }

    #[test]
    #[should_panic(expected = "end at the contact")]
    fn path_must_end_at_contact() {
        Contact::new(n(5), chain(&[0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn single_node_path_rejected() {
        Contact::new(n(0), chain(&[0]));
    }

    #[test]
    fn table_add_remove() {
        let mut t = ContactTable::new();
        assert!(t.is_empty());
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.add(Contact::new(n(9), chain(&[0, 4, 9])));
        assert_eq!(t.len(), 2);
        assert!(t.contains(n(7)));
        assert!(!t.contains(n(8)));
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![n(7), n(9)]);
        assert!(t.remove(n(7)));
        assert!(!t.remove(n(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate contact")]
    fn duplicate_add_panics() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.add(Contact::new(n(7), chain(&[0, 4, 7])));
    }

    #[test]
    fn update_path_swaps_route() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.update_path(n(7), chain(&[0, 2, 5, 7]));
        assert_eq!(t.contacts()[0].hops(), 3);
        // updating a missing contact is a no-op
        t.update_path(n(9), chain(&[0, 9]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(1), chain(&[0, 1])));
        t.tombstone(n(2), 3);
        t.note_unacked(n(1));
        t.clear();
        assert!(t.is_empty());
        assert!(t.tombstones().is_empty());
        assert_eq!(t.retrying(), 0);
    }

    #[test]
    fn tombstones_evict_and_decay() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.note_unacked(n(7));
        t.tombstone(n(7), 2);
        assert!(!t.contains(n(7)), "tombstoning evicts the contact");
        assert_eq!(t.retrying(), 0, "tombstoning clears retry state");
        assert!(t.is_tombstoned(n(7)));
        assert_eq!(t.max_tombstone_ttl(), 2);
        // Repeat tombstone extends, never shortens.
        t.tombstone(n(7), 1);
        assert_eq!(t.max_tombstone_ttl(), 2);
        t.decay_tombstones();
        assert!(t.is_tombstoned(n(7)));
        t.decay_tombstones();
        assert!(!t.is_tombstoned(n(7)));
        assert_eq!(t.max_tombstone_ttl(), 0);
    }

    #[test]
    fn retry_backoff_doubles_skip_windows() {
        let mut t = ContactTable::new();
        assert!(!t.retry_skip(n(4)), "no outstanding probe, no skip");
        assert_eq!(t.note_unacked(n(4)), 1);
        assert!(t.retry_skip(n(4)), "level 1 skips one round");
        assert!(!t.retry_skip(n(4)), "then the contact is due again");
        assert_eq!(t.note_unacked(n(4)), 2);
        assert!(t.retry_skip(n(4)));
        assert!(t.retry_skip(n(4)));
        assert!(t.retry_skip(n(4)), "level 2 skips three rounds");
        assert!(!t.retry_skip(n(4)));
        assert_eq!(t.retry_level(n(4)), 2);
        t.clear_retry(n(4));
        assert_eq!(t.retry_level(n(4)), 0);
        assert!(!t.retry_skip(n(4)));
    }
}

//! Contact entries and per-node contact tables.
//!
//! A contact is a node 2R‥r hops away, stored together with the *source
//! path* the CSQ traversed to reach it (§III.C.1 step 6: "the path to the
//! contact is returned and stored at the source node"). The path is what
//! maintenance validates and queries travel along.

use net_topology::node::NodeId;

/// One selected contact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contact {
    /// The contact node itself.
    pub id: NodeId,
    /// Source path, inclusive: `path[0]` is the source, `path.last()` is
    /// the contact. Hop length is `path.len() - 1`.
    pub path: Vec<NodeId>,
}

impl Contact {
    /// Create a contact with its source path.
    ///
    /// # Panics
    /// Panics unless the path starts somewhere, ends at `id`, and has at
    /// least one hop.
    pub fn new(id: NodeId, path: Vec<NodeId>) -> Self {
        assert!(path.len() >= 2, "contact path needs at least one hop");
        assert_eq!(*path.last().unwrap(), id, "path must end at the contact");
        Contact { id, path }
    }

    /// Hop count of the stored path.
    #[inline]
    pub fn hops(&self) -> u16 {
        (self.path.len() - 1) as u16
    }

    /// The source end of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.path[0]
    }
}

/// Read access to every node's [`ContactTable`], however the tables are
/// laid out in memory.
///
/// The query engine, reachability and resource layers are generic over
/// this trait so they can walk contact graphs stored either as one flat
/// slice/`Vec` (tests, benches, hand-built topologies) or as
/// shard-*owned* spans behind `CardWorld`'s sharded state model (where no
/// contiguous slice of all tables exists). Implementations must be pure
/// reads: a walk consults tables for many different nodes and the
/// sharded sweeps run those reads concurrently against frozen state.
pub trait TableSource {
    /// The contact table of node index `i`.
    fn table(&self, i: usize) -> &ContactTable;
}

impl TableSource for [ContactTable] {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        &self[i]
    }
}

impl TableSource for Vec<ContactTable> {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        &self[i]
    }
}

impl<T: TableSource + ?Sized> TableSource for &T {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        (**self).table(i)
    }
}

impl<T: TableSource + ?Sized> TableSource for &mut T {
    #[inline]
    fn table(&self, i: usize) -> &ContactTable {
        (**self).table(i)
    }
}

/// The contact table of one source node.
#[derive(Clone, Debug, Default)]
pub struct ContactTable {
    contacts: Vec<Contact>,
}

impl ContactTable {
    /// An empty table.
    pub fn new() -> Self {
        ContactTable {
            contacts: Vec::new(),
        }
    }

    /// Number of live contacts.
    pub fn len(&self) -> usize {
        self.contacts.len()
    }

    /// True when no contacts are held.
    pub fn is_empty(&self) -> bool {
        self.contacts.is_empty()
    }

    /// The contacts, in selection order.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Iterate over contact node ids (the CSQ `Contact_List`).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.contacts.iter().map(|c| c.id)
    }

    /// Is `node` already a contact?
    pub fn contains(&self, node: NodeId) -> bool {
        self.contacts.iter().any(|c| c.id == node)
    }

    /// The live contact entry for `node`, if it is (still) a contact —
    /// how hint probes resolve a cached next hop against current state
    /// (a departed contact makes the hint a `stale_contact` miss).
    pub fn get(&self, node: NodeId) -> Option<&Contact> {
        self.contacts.iter().find(|c| c.id == node)
    }

    /// Add a newly selected contact.
    ///
    /// # Panics
    /// Panics if `node` is already present (selection must not duplicate).
    pub fn add(&mut self, contact: Contact) {
        assert!(
            !self.contains(contact.id),
            "duplicate contact {:?}",
            contact.id
        );
        self.contacts.push(contact);
    }

    /// Remove a contact by id; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let before = self.contacts.len();
        self.contacts.retain(|c| c.id != node);
        self.contacts.len() != before
    }

    /// Replace the stored path of contact `node` (after local recovery
    /// re-routed it). No-op if the contact is gone.
    pub fn update_path(&mut self, node: NodeId, path: Vec<NodeId>) {
        if let Some(c) = self.contacts.iter_mut().find(|c| c.id == node) {
            debug_assert_eq!(*path.last().unwrap(), node);
            c.path = path;
        }
    }

    /// Drop every contact (used when re-initializing a node).
    pub fn clear(&mut self) {
        self.contacts.clear();
    }

    /// Mutable access for maintenance (retain-style filtering).
    pub(crate) fn contacts_mut(&mut self) -> &mut Vec<Contact> {
        &mut self.contacts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn chain(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| n(i)).collect()
    }

    #[test]
    fn contact_path_accessors() {
        let c = Contact::new(n(5), chain(&[0, 2, 4, 5]));
        assert_eq!(c.hops(), 3);
        assert_eq!(c.source(), n(0));
        assert_eq!(c.id, n(5));
    }

    #[test]
    #[should_panic(expected = "end at the contact")]
    fn path_must_end_at_contact() {
        Contact::new(n(5), chain(&[0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn single_node_path_rejected() {
        Contact::new(n(0), chain(&[0]));
    }

    #[test]
    fn table_add_remove() {
        let mut t = ContactTable::new();
        assert!(t.is_empty());
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.add(Contact::new(n(9), chain(&[0, 4, 9])));
        assert_eq!(t.len(), 2);
        assert!(t.contains(n(7)));
        assert!(!t.contains(n(8)));
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![n(7), n(9)]);
        assert!(t.remove(n(7)));
        assert!(!t.remove(n(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate contact")]
    fn duplicate_add_panics() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.add(Contact::new(n(7), chain(&[0, 4, 7])));
    }

    #[test]
    fn update_path_swaps_route() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(7), chain(&[0, 3, 7])));
        t.update_path(n(7), chain(&[0, 2, 5, 7]));
        assert_eq!(t.contacts()[0].hops(), 3);
        // updating a missing contact is a no-op
        t.update_path(n(9), chain(&[0, 9]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut t = ContactTable::new();
        t.add(Contact::new(n(1), chain(&[0, 1])));
        t.clear();
        assert!(t.is_empty());
    }
}

//! The contact-selection decision (§III.C.2).
//!
//! When a CSQ reaches a node X at (walk) hop count `d`, X decides whether
//! to become a contact for the source:
//!
//! * **Overlap checks** (all methods): X refuses if the source itself or
//!   any already-chosen contact (the CSQ's `Contact_List`) lies inside X's
//!   own neighborhood — overlapping neighborhoods add little reachability.
//! * **PM** additionally accepts only with probability
//!   `P = (d − R)/(r − R)` (eq. 1) or `P = (d − 2R)/(r − 2R)` (eq. 2); the
//!   walk has no sense of direction, so `d` overestimates true distance and
//!   eq. 1 permits contacts inside 2R (Fig 1's overlap pathology).
//! * **EM** replaces the probability with one more overlap check: the CSQ
//!   carries the source's `Edge_List`, and X refuses if *any* edge node
//!   lies in its neighborhood. Any node closer than 2R to the source is
//!   within R of some edge node, so this enforces the 2R‥r annulus
//!   geometrically — no lost opportunities, no direction blindness.

use manet_routing::neighborhood::NeighborhoodTables;
use net_topology::node::NodeId;
use sim_core::rng::RngStream;

use crate::config::{CardConfig, SelectionMethod};

/// Acceptance probability of the probabilistic method, clamped to [0, 1].
///
/// `eq2 = false` gives equation (1), `eq2 = true` equation (2).
pub fn pm_probability(d: u16, radius: u16, r: u16, eq2: bool) -> f64 {
    let (lo, hi) = if eq2 { (2 * radius, r) } else { (radius, r) };
    if hi <= lo {
        // degenerate annulus: accept only at the outer rim
        return if d >= hi { 1.0 } else { 0.0 };
    }
    ((d as f64 - lo as f64) / (hi as f64 - lo as f64)).clamp(0.0, 1.0)
}

/// The overlap checks common to all methods: true when neither the source
/// nor any already-chosen contact lies in `candidate`'s neighborhood.
///
/// Membership is zone-local (sorted member array + Bloom fingerprint):
/// the fingerprint rejects the common "nowhere near my zone" case in two
/// word reads, so these checks stay O(1)-ish without any O(N) per-node
/// bitset behind them.
pub fn passes_overlap_checks(
    tables: &NeighborhoodTables,
    candidate: NodeId,
    source: NodeId,
    contact_list: &[NodeId],
) -> bool {
    let nb = tables.of(candidate);
    !nb.contains(source) && !nb.contains_any(contact_list)
}

/// The edge method's extra check: no source edge node inside the
/// candidate's neighborhood.
pub fn passes_edge_check(
    tables: &NeighborhoodTables,
    candidate: NodeId,
    edge_list: &[NodeId],
) -> bool {
    !tables.of(candidate).contains_any(edge_list)
}

/// Full §III.C.2 decision at candidate node `candidate`, walk hop count
/// `d`. `edge_list` is consulted only by the edge method. Draws from `rng`
/// only for the probabilistic methods.
#[allow(clippy::too_many_arguments)] // mirrors the protocol message fields
pub fn decides_to_be_contact(
    cfg: &CardConfig,
    tables: &NeighborhoodTables,
    candidate: NodeId,
    source: NodeId,
    contact_list: &[NodeId],
    edge_list: &[NodeId],
    d: u16,
    rng: &mut RngStream,
) -> bool {
    if !passes_overlap_checks(tables, candidate, source, contact_list) {
        return false;
    }
    match cfg.method {
        SelectionMethod::ProbabilisticEq1 => rng.chance(pm_probability(
            d,
            cfg.radius,
            cfg.max_contact_distance,
            false,
        )),
        SelectionMethod::ProbabilisticEq2 => rng.chance(pm_probability(
            d,
            cfg.radius,
            cfg.max_contact_distance,
            true,
        )),
        SelectionMethod::Edge => passes_edge_check(tables, candidate, edge_list),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_topology::graph::Adjacency;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A long path graph 0-1-2-...-19.
    fn path20() -> Adjacency {
        let mut adj = Adjacency::with_nodes(20);
        for i in 0..19u32 {
            adj.add_edge(n(i), n(i + 1));
        }
        adj
    }

    #[test]
    fn pm_probability_eq1_endpoints() {
        // R=3, r=20: P=0 at d=3, P=1 at d=20
        assert_eq!(pm_probability(3, 3, 20, false), 0.0);
        assert_eq!(pm_probability(20, 3, 20, false), 1.0);
        let mid = pm_probability(11, 3, 20, false);
        assert!((mid - 8.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn pm_probability_eq2_endpoints() {
        // R=3, r=20: P=0 at d<=6, P=1 at d=20
        assert_eq!(pm_probability(6, 3, 20, true), 0.0);
        assert_eq!(pm_probability(4, 3, 20, true), 0.0, "below 2R clamps to 0");
        assert_eq!(pm_probability(20, 3, 20, true), 1.0);
        assert_eq!(pm_probability(25, 3, 20, true), 1.0, "beyond r clamps to 1");
        let mid = pm_probability(13, 3, 20, true);
        assert!((mid - 7.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn pm_probability_degenerate_annulus() {
        // r == 2R: accept only at the rim
        assert_eq!(pm_probability(5, 3, 6, true), 0.0);
        assert_eq!(pm_probability(6, 3, 6, true), 1.0);
    }

    #[test]
    fn overlap_check_rejects_source_in_neighborhood() {
        let adj = path20();
        let tables = NeighborhoodTables::compute(&adj, 3);
        // node 2 is within 3 hops of source 0 → overlap
        assert!(!passes_overlap_checks(&tables, n(2), n(0), &[]));
        // node 10 is 10 hops away → no overlap with source
        assert!(passes_overlap_checks(&tables, n(10), n(0), &[]));
    }

    #[test]
    fn overlap_check_rejects_existing_contact_nearby() {
        let adj = path20();
        let tables = NeighborhoodTables::compute(&adj, 3);
        // candidate 10, existing contact at 12 (2 hops away) → overlap
        assert!(!passes_overlap_checks(&tables, n(10), n(0), &[n(12)]));
        // existing contact at 17 (7 hops from 10) → fine
        assert!(passes_overlap_checks(&tables, n(10), n(0), &[n(17)]));
    }

    #[test]
    fn edge_check_enforces_2r_annulus_geometrically() {
        let adj = path20();
        let tables = NeighborhoodTables::compute(&adj, 3);
        let edge_list: Vec<NodeId> = tables.of(n(0)).edge_nodes().to_vec(); // {3}
        assert_eq!(edge_list, vec![n(3)]);
        // node 5 is 2 hops from edge node 3 → edge in neighborhood → reject
        assert!(!passes_edge_check(&tables, n(5), &edge_list));
        // node 6 is exactly 3 hops from edge 3 → still within R → reject
        assert!(!passes_edge_check(&tables, n(6), &edge_list));
        // node 7 is 4 hops from edge 3 → > R → accept (true distance 7 > 2R=6)
        assert!(passes_edge_check(&tables, n(7), &edge_list));
    }

    #[test]
    fn em_decision_deterministic() {
        let adj = path20();
        let tables = NeighborhoodTables::compute(&adj, 3);
        let cfg = CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(16)
            .with_method(SelectionMethod::Edge);
        let edges: Vec<NodeId> = tables.of(n(0)).edge_nodes().to_vec();
        let mut rng = RngStream::seed_from_u64(1);
        // node 8 (8 hops > 2R=6, no overlaps) accepts regardless of rng
        for _ in 0..10 {
            assert!(decides_to_be_contact(
                &cfg,
                &tables,
                n(8),
                n(0),
                &[],
                &edges,
                8,
                &mut rng
            ));
        }
        // node 5 always refuses
        for _ in 0..10 {
            assert!(!decides_to_be_contact(
                &cfg,
                &tables,
                n(5),
                n(0),
                &[],
                &edges,
                5,
                &mut rng
            ));
        }
    }

    #[test]
    fn pm_decision_respects_probability_extremes() {
        let adj = path20();
        let tables = NeighborhoodTables::compute(&adj, 3);
        let cfg = CardConfig::default()
            .with_radius(3)
            .with_max_contact_distance(16)
            .with_method(SelectionMethod::ProbabilisticEq2);
        let mut rng = RngStream::seed_from_u64(2);
        // d = r → P = 1 → always accepts (node 16 is 16 hops out, no overlap)
        assert!(decides_to_be_contact(
            &cfg,
            &tables,
            n(16),
            n(0),
            &[],
            &[],
            16,
            &mut rng
        ));
        // d = 2R → P = 0 → never accepts, even with no overlap
        assert!(!decides_to_be_contact(
            &cfg,
            &tables,
            n(16),
            n(0),
            &[],
            &[],
            6,
            &mut rng
        ));
    }

    #[test]
    fn pm_eq1_accepts_closer_than_eq2() {
        // With d=R+1 eq1 has nonzero probability while eq2 is zero — the
        // overlap pathology of Fig 1.
        let p1 = pm_probability(4, 3, 20, false);
        let p2 = pm_probability(4, 3, 20, true);
        assert!(p1 > 0.0);
        assert_eq!(p2, 0.0);
    }

    proptest! {
        /// PM probabilities are monotone in d and bounded in [0,1].
        #[test]
        fn prop_pm_monotone(radius in 1u16..5, extra in 1u16..20, d1 in 0u16..40, d2 in 0u16..40) {
            let r = 2 * radius + extra;
            for eq2 in [false, true] {
                let (lo, hi) = (d1.min(d2), d1.max(d2));
                let plo = pm_probability(lo, radius, r, eq2);
                let phi = pm_probability(hi, radius, r, eq2);
                prop_assert!((0.0..=1.0).contains(&plo));
                prop_assert!(plo <= phi);
            }
        }

        /// The edge check implies true distance > 2R on any graph
        /// (the geometric argument of §III.C.2.b).
        #[test]
        fn prop_edge_check_implies_distance(
            edges in proptest::collection::vec((0u32..18, 0u32..18), 0..60),
            src in 0u32..18, cand in 0u32..18, radius in 1u16..3,
        ) {
            let mut adj = Adjacency::with_nodes(18);
            for &(a, b) in &edges {
                if a != b {
                    adj.add_edge(n(a), n(b));
                }
            }
            let tables = NeighborhoodTables::compute(&adj, radius);
            let nb_src = tables.of(n(src));
            let edge_list: Vec<NodeId> = nb_src.edge_nodes().to_vec();
            let candidate = n(cand);
            // Only meaningful when source and candidate are connected.
            if let Some(true_dist) =
                net_topology::bfs::full_bfs(&adj, n(src)).distance(candidate)
            {
                let accepted = passes_overlap_checks(&tables, candidate, n(src), &[])
                    && passes_edge_check(&tables, candidate, &edge_list);
                if accepted {
                    prop_assert!(
                        true_dist > 2 * radius,
                        "EM accepted a node at {} hops with R={}",
                        true_dist, radius
                    );
                }
            }
        }
    }
}

//! Proptest harness pinning the cross-shard message plane's delivery
//! contract: every plane-routed protocol path — hint deposits drained in
//! `(dst shard, src shard, seq)` order, the fully message-mediated
//! `query_all_plane` walk, and the metered validation traffic — must be
//! **bit-identical** across protocol shard counts (including the
//! one-shard degenerate case and more shards than nodes) and across
//! worker participation (the `*_serial` sweeps run the same rounds
//! inline on one thread; the parallel sweeps fan out over the worker
//! pool — the pool size itself is fixed per host, so serial-vs-pool is
//! the worker axis a single process can vary).
//!
//! The observables compared are the ones the plane could corrupt if its
//! ordering ever leaked scheduling: contact tables (ids *and* paths),
//! the bucketed message-statistics series, maintenance totals, query
//! outcomes entry for entry, and the hint store's observable state
//! (counters, live-slot count, epoch — plus a probe sweep, which reads
//! every slot that matters through the cache).

use card_core::prelude::*;
use card_core::world::MaintenanceTotals;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use proptest::prelude::*;
use sim_core::faults::{FaultConfig, FaultPlan, PartitionWindow};

const NODES: usize = 140;

fn scenario() -> Scenario {
    Scenario::new(NODES, 500.0, 500.0, 60.0)
}

fn cfg(seed: u64, hints: bool) -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(3)
        .with_hints(hints)
        .with_seed(seed)
}

fn pairs(seed: u64, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..count)
        .map(|_| {
            (
                NodeId::new((next() % NODES as u64) as u32),
                NodeId::new((next() % NODES as u64) as u32),
            )
        })
        .collect()
}

/// Everything the plane could corrupt, captured after a protocol run.
#[derive(Debug, PartialEq)]
struct Trace {
    contacts: Vec<Vec<(NodeId, Vec<NodeId>)>>,
    msg_series: Vec<u64>,
    maintenance: MaintenanceTotals,
    cold: Vec<QueryOutcome>,
    warm: Vec<QueryOutcome>,
    hint_stats: HintStats,
    hint_len: Option<usize>,
    hint_epoch: Option<u32>,
}

/// Run the full protocol — selection, two validation rounds, a cold and
/// a warm query sweep — on `shards` shards. `serial` switches selection
/// and validation to their `*_serial` references (same rounds, one
/// thread, no fan-out); the query sweeps always run through `query_all`
/// so both modes keep the sweep's frozen-batch hint semantics (the
/// one-at-a-time `query_all_serial` deliberately differs with hints on:
/// each query's deposits become visible to the *next* query in the
/// batch — that reference is pinned hints-off in the plane-walk
/// property below).
fn trace(seed: u64, hints: bool, shards: usize, serial: bool) -> Trace {
    let mut w = CardWorld::build(&scenario(), cfg(seed, hints));
    w.set_shard_count(shards);
    let workload = pairs(seed ^ 0xbeef, 48);
    if serial {
        w.select_all_contacts_serial();
        w.validation_round_serial();
        w.validation_round_serial();
    } else {
        w.select_all_contacts();
        w.validation_round();
        w.validation_round();
    }
    let cold = w.query_all(&workload);
    let warm = w.query_all(&workload);
    // Plane accounting must always balance — faulted deliveries (drops
    // and the deferred lane) are part of the ledger, and on this calm
    // world both fault legs are zero. One shard can never cross a
    // boundary.
    let ps = w.plane_stats();
    assert_eq!(
        ps.sent,
        ps.cross_shard + ps.local + ps.dropped + w.plane_deferred_pending() as u64,
        "plane ledger"
    );
    assert_eq!((ps.dropped, ps.delayed), (0, 0), "calm world never faults");
    if w.shard_count() == 1 {
        assert_eq!(ps.cross_shard, 0, "one shard has no boundary to cross");
    }
    Trace {
        contacts: w
            .contact_tables()
            .iter()
            .map(|t| {
                t.contacts()
                    .iter()
                    .map(|c| (c.id, c.path.clone()))
                    .collect()
            })
            .collect(),
        msg_series: w.stats().series_where(|_| true),
        maintenance: w.maintenance_totals().clone(),
        cold,
        warm,
        hint_stats: w.hint_stats().clone(),
        hint_len: w.hint_store().map(|s| s.len()),
        hint_epoch: w.hint_store().map(|s| s.epoch()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline invariance: for random seeds, any shard count
    /// (1, a few, many, more-than-N) and either worker mode produces the
    /// exact trace of the one-shard serial reference.
    #[test]
    fn prop_plane_delivery_is_shard_and_worker_invariant(
        seed in 1u64..1_000_000,
        shards_ix in 0usize..7,
        serial in any::<bool>(),
        hints in any::<bool>(),
    ) {
        let shards = [1usize, 2, 3, 5, 6, 32, NODES + 9][shards_ix];
        let reference = trace(seed, hints, 1, true);
        let candidate = trace(seed, hints, shards, serial);
        prop_assert_eq!(
            candidate, reference,
            "shards={} serial={} hints={} diverged from the 1-shard serial reference",
            shards, serial, hints
        );
    }

    /// The fully message-mediated walk: `query_all_plane` must agree with
    /// the batched escalation sweep outcome for outcome — and with the
    /// recorded message series — at every shard count.
    #[test]
    fn prop_plane_walk_matches_escalation_sweep(
        seed in 1u64..1_000_000,
        shards_ix in 0usize..8,
    ) {
        let shards = [1usize, 2, 3, 4, 5, 7, 8, NODES * 2][shards_ix];
        let workload = pairs(seed ^ 0x5eed, 40);
        let build = || {
            let mut w = CardWorld::build(&scenario(), cfg(seed, false));
            w.set_shard_count(shards);
            w.select_all_contacts();
            w
        };
        let mut via_sweep = build();
        let sweep_out = via_sweep.query_all_cache_off(&workload);
        let mut via_plane = build();
        let plane_out = via_plane.query_all_plane(&workload);
        let mut via_serial = build();
        let serial_out = via_serial.query_all_serial(&workload);
        prop_assert_eq!(&plane_out, &sweep_out);
        prop_assert_eq!(&plane_out, &serial_out, "one-at-a-time reference");
        prop_assert_eq!(
            via_plane.stats().series_where(|_| true),
            via_sweep.stats().series_where(|_| true),
            "plane-walk message accounting diverged at {} shards",
            shards
        );
        prop_assert_eq!(
            via_plane.stats().series_where(|_| true),
            via_serial.stats().series_where(|_| true),
            "plane-walk accounting diverged from the serial reference"
        );
        // The plane run actually exchanged (unless every query resolved
        // in its source zone, which this workload does not allow).
        if plane_out.iter().any(|o| o.query_msgs > 0) {
            prop_assert!(via_plane.plane_stats().rounds > 0);
        }
    }

    /// Hint deposits routed through the plane build the same cache as
    /// depositing in pair order directly: resharding *mid-run* (state
    /// migrated slot by slot) must not disturb a single counter of a
    /// subsequent warm sweep.
    #[test]
    fn prop_deposits_survive_mid_run_reshard(
        seed in 1u64..1_000_000,
        before_ix in 0usize..5,
        after_ix in 0usize..6,
    ) {
        let before = [1usize, 2, 3, 4, 5][before_ix];
        let after = [1usize, 3, 4, 6, 7, NODES + 1][after_ix];
        let workload = pairs(seed ^ 0xcafe, 48);
        let run = |reshard: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg(seed, true));
            w.set_shard_count(before);
            w.select_all_contacts();
            let cold = w.query_all(&workload); // deposits route via plane
            if let Some(k) = reshard {
                w.set_shard_count(k); // migrates hint slots + LRU clocks
            }
            w.reset_hint_stats();
            let warm = w.query_all(&workload);
            (cold, warm, w.hint_stats().clone(),
             w.hint_store().map(|s| (s.len(), s.epoch())))
        };
        let stayed = run(None);
        let moved = run(Some(after));
        prop_assert_eq!(&stayed.0, &moved.0, "cold sweeps ran identically");
        prop_assert_eq!(&stayed.1, &moved.1, "warm outcomes survive reshard");
        prop_assert_eq!(&stayed.2, &moved.2, "hint counters survive reshard");
        prop_assert_eq!(stayed.3, moved.3, "live slots + epoch survive reshard");
    }

    /// Reshard *under churn*: `set_shard_count` fired between a lossy
    /// sweep and the next round, while the plane's deferred lane may hold
    /// fault-delayed deposits and contact tables carry live tombstone,
    /// retry-backoff and fruitless-round state. The migrated world must
    /// finish the run bit-identically to one that never resharded —
    /// deferred messages are re-injected with their verdicts already
    /// spent, so no message draws a second verdict.
    #[test]
    fn prop_reshard_under_churn_preserves_faulted_trace(
        seed in 1u64..1_000_000,
        before_ix in 0usize..4,
        after_ix in 0usize..5,
        churn_pct in 0u32..25,
        drop_pct in 1u32..12,
        delay_pct in 1u32..12,
    ) {
        let before = [1usize, 2, 3, 5][before_ix];
        let after = [1usize, 2, 4, 6, NODES + 1][after_ix];
        let fault_cfg = FaultConfig {
            churn_rate: churn_pct as f64 / 100.0,
            rejoin_after: 1,
            partition: Some(PartitionWindow {
                start_round: 1,
                end_round: 3,
                fraction: 0.5,
            }),
            drop_rate: drop_pct as f64 / 100.0,
            delay_rate: delay_pct as f64 / 100.0,
            rounds: 4,
        };
        let workload = pairs(seed ^ 0xd00d, 48);
        let run = |reshard: Option<usize>| {
            let mut w = CardWorld::build(&scenario(), cfg(seed, true));
            w.set_shard_count(before);
            w.select_all_contacts();
            w.enable_faults(FaultPlan::generate(&fault_cfg, NODES, seed ^ 0xfa));
            w.validation_round();
            let cold = w.query_all(&workload); // lossy: deposits drop/defer
            if let Some(k) = reshard {
                w.set_shard_count(k); // migrates deferred + queued messages
            }
            w.validation_round();
            let warm = w.query_all(&workload);
            w.validation_round();
            let ps = w.plane_stats();
            (
                cold,
                warm,
                w.contact_tables()
                    .iter()
                    .map(|t| {
                        (
                            t.contacts()
                                .iter()
                                .map(|c| (c.id, c.path.clone()))
                                .collect::<Vec<_>>(),
                            t.tombstones().to_vec(),
                        )
                    })
                    .collect::<Vec<_>>(),
                w.stats().series_where(|_| true),
                w.maintenance_totals().clone(),
                w.hint_stats().clone(),
                w.fault_report(),
                // Shard-invariant plane projection: the local/cross split
                // moves with the boundaries, the totals may not.
                (ps.sent, ps.dropped, ps.delayed, ps.local + ps.cross_shard),
                w.plane_deferred_pending(),
                w.pending_query_retries(),
            )
        };
        let stayed = run(None);
        let moved = run(Some(after));
        prop_assert_eq!(&stayed, &moved, "reshard under churn changed the run");
        // The ledger closes on both sides of the migration.
        let (sent, dropped, _delayed, delivered) = stayed.7;
        prop_assert_eq!(sent, delivered + dropped + stayed.8 as u64, "plane ledger");
    }
}

/// Non-proptest smoke pinning the degenerate cases by name: one shard,
/// more shards than nodes, and a shard count equal to N.
#[test]
fn degenerate_shard_counts_agree_with_reference() {
    let reference = trace(4242, true, 1, true);
    for shards in [1usize, NODES, NODES + 17, 3] {
        for serial in [false, true] {
            assert_eq!(
                trace(4242, true, shards, serial),
                reference,
                "shards={shards} serial={serial}"
            );
        }
    }
}

//! Differential harness pinning the fault-injection plane.
//!
//! The determinism contract extends to hostile regimes: a faulted run —
//! node crashes and rejoins, a region-scoped partition window, per-message
//! drop/delay on the deposit plane — is **bit-identical** across protocol
//! shard counts, across the serial and parallel validation paths (the
//! worker axis: the parallel path fans out over the `sim_core::par` pool,
//! the serial path runs the same spans inline), and between the tick and
//! event drive modes. Faults are applied on the ValidationRound lattice
//! and every verdict is keyed on message *content* hashed with the plan
//! seed, so the whole fault history is a pure function of `(seed, plan)`.
//!
//! The chaos proptests draw random fault regimes and assert the same
//! invariants hold for all of them: bit-identical replay, a closed plane
//! ledger (`sent == local + cross_shard + dropped + deferred`), zero
//! tombstone-liveness violations, and zero grid-residency violations for
//! tombstoned/rejoined nodes.

use card_core::prelude::*;
use mobility::walk::RandomWalk;
use net_topology::geometry::Point2;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use proptest::prelude::*;
use sim_core::faults::{FaultConfig, FaultPlan, PartitionWindow};
use sim_core::rng::SeedSplitter;
use sim_core::time::{SimDuration, SimTime};

const NODES: usize = 120;

fn scenario() -> Scenario {
    Scenario::new(NODES, 450.0, 450.0, 60.0)
}

fn cfg(seed: u64) -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(2)
        .with_seed(seed)
}

/// The acceptance regime: crashes with rejoins, one partition window,
/// 1% drop and 1% delay on the plane.
fn hostile() -> FaultConfig {
    FaultConfig {
        churn_rate: 0.15,
        rejoin_after: 2,
        partition: Some(PartitionWindow {
            start_round: 1,
            end_round: 3,
            fraction: 0.5,
        }),
        drop_rate: 0.01,
        delay_rate: 0.01,
        rounds: 6,
    }
}

/// One dwell-heavy mobility partition; identical arguments build
/// bit-identical models.
fn model(seed: u64, field: net_topology::geometry::Field) -> mobility::RegionalMobility {
    let mut m = mobility::RegionalMobility::new();
    let stream = SeedSplitter::new(seed).stream("mobility", 0);
    m.push_region(
        NODES,
        Box::new(RandomWalk::new_with_dwell(
            NODES, field, 0.5, 2.0, 2.0, 0.9, stream,
        )),
    );
    m
}

fn workload(seed: u64, horizon_ms: u64) -> Vec<Arrival> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..12u32)
        .map(|_| {
            let at = SimDuration::from_millis(next() % horizon_ms.max(1));
            let source = NodeId::new((next() % NODES as u64) as u32);
            let target = NodeId::new((next() % NODES as u64) as u32);
            Arrival {
                at,
                kind: ArrivalKind::Query { source, target },
            }
        })
        .collect()
}

/// Shard-invariant observable state (plane totals are projected: the
/// local/cross split and metered crossings depend on shard boundaries).
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: SimTime,
    positions: Vec<Point2>,
    contacts: Vec<Vec<(NodeId, Vec<NodeId>)>>,
    tombstones: Vec<Vec<(NodeId, u32)>>,
    msg_series: Vec<u64>,
    maintenance: card_core::world::MaintenanceTotals,
    hint_stats: HintStats,
    fault_report: FaultReport,
    plane_totals: (u64, u64, u64, u64),
    deferred: usize,
    pending_retries: usize,
}

fn snapshot(w: &CardWorld) -> Snapshot {
    let ps = w.plane_stats();
    Snapshot {
        now: w.now(),
        positions: w.network().positions().to_vec(),
        contacts: w
            .contact_tables()
            .iter()
            .map(|t| {
                t.contacts()
                    .iter()
                    .map(|c| (c.id, c.path.clone()))
                    .collect()
            })
            .collect(),
        tombstones: w
            .contact_tables()
            .iter()
            .map(|t| t.tombstones().to_vec())
            .collect(),
        msg_series: w.stats().series_where(|_| true),
        maintenance: w.maintenance_totals().clone(),
        hint_stats: w.hint_stats().clone(),
        fault_report: w.fault_report(),
        plane_totals: (ps.sent, ps.dropped, ps.delayed, ps.local + ps.cross_shard),
        deferred: w.plane_deferred_pending(),
        pending_retries: w.pending_query_retries(),
    }
}

fn world(seed: u64, shards: usize, hints: bool) -> CardWorld {
    let mut w = CardWorld::build(&scenario(), cfg(seed).with_hints(hints));
    w.set_shard_count(shards);
    w.select_all_contacts();
    w
}

/// Drive a faulted world through the full mobile pipeline and return its
/// observable state plus workload outcomes.
fn drive_faulted(
    seed: u64,
    shards: usize,
    mode: DriveMode,
    fault_cfg: &FaultConfig,
    hints: bool,
) -> (Snapshot, Vec<QueryOutcome>) {
    let mut w = world(seed, shards, hints);
    w.enable_faults(FaultPlan::generate(fault_cfg, NODES, seed ^ 0xfa17));
    let mut m = model(seed, w.network().field());
    // Validation rounds ride the 1 s lattice: 7.6 s covers rounds 0..=7,
    // so every crash in [1, 6] fires and early crashes rejoin in-run.
    let horizon_ms = 7600u64;
    let mut driver = EventDriver::new(&w, &m, mode, workload(seed, horizon_ms));
    driver.drive(&mut w, &mut m, SimDuration::from_millis(horizon_ms));
    assert_eq!(driver.report().audit_violations, 0);
    // Single queries apply hint deposits in place; only batched sweeps
    // route them through the (lossy) message plane. Two sweeps exercise
    // drop/delay verdicts and the deferred-delivery lane.
    let mut outcomes = driver.report().outcomes.clone();
    let pairs: Vec<(NodeId, NodeId)> = (0..48u32)
        .map(|i| {
            (
                NodeId::new(i % NODES as u32),
                NodeId::new((i * 29 + 7) % NODES as u32),
            )
        })
        .collect();
    for _ in 0..2 {
        outcomes.extend(w.query_all(&pairs));
        w.validation_round();
    }
    (snapshot(&w), outcomes)
}

/// The acceptance pin: crash + partition + 1% loss, bit-identical across
/// {1, 2, 4} shards × {tick, event} drivers over the mobile pipeline.
#[test]
fn hostile_run_is_bit_identical_across_shards_and_drivers() {
    let seed = 4242;
    let reference = drive_faulted(seed, 1, DriveMode::Tick, &hostile(), true);
    assert!(
        reference.0.fault_report.crashes > 0,
        "plan must crash someone"
    );
    assert!(reference.0.fault_report.rejoins > 0, "rejoins must fire");
    assert_eq!(reference.0.fault_report.partitions_opened, 1);
    assert_eq!(reference.0.fault_report.partitions_healed, 1);
    assert_eq!(reference.0.fault_report.liveness_violations, 0);
    assert_eq!(reference.0.fault_report.grid_audit_violations, 0);
    assert!(
        reference.0.plane_totals.1 + reference.0.plane_totals.2 > 0,
        "a lossy plan should drop or delay at least one deposit"
    );
    for shards in [1usize, 2, 4] {
        for mode in [DriveMode::Tick, DriveMode::Event] {
            if shards == 1 && mode == DriveMode::Tick {
                continue;
            }
            let run = drive_faulted(seed, shards, mode, &hostile(), true);
            assert_eq!(
                run, reference,
                "faulted run diverged at {shards} shards, {mode:?}"
            );
        }
    }
}

/// The serial validation path (the one-worker axis) replays the same
/// fault history as the parallel path on a static world.
#[test]
fn serial_and_parallel_validation_agree_under_faults() {
    let seed = 77;
    let run = |shards: usize, serial: bool| {
        let mut w = world(seed, shards, true);
        w.enable_faults(FaultPlan::generate(&hostile(), NODES, seed));
        let pairs: Vec<(NodeId, NodeId)> = (0..24u32)
            .map(|i| {
                (
                    NodeId::new(i % NODES as u32),
                    NodeId::new((i * 41 + 3) % NODES as u32),
                )
            })
            .collect();
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            if serial {
                w.validation_round_serial();
            } else {
                w.validation_round();
            }
            outcomes.push(w.query_all(&pairs));
        }
        (snapshot(&w), outcomes)
    };
    let reference = run(1, true);
    for (shards, serial) in [(1, false), (2, true), (2, false), (4, true), (4, false)] {
        assert_eq!(
            run(shards, serial),
            reference,
            "diverged at {shards} shards, serial={serial}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Chaos differential: random fault regimes replay bit-identically
    /// across shard counts and drive modes, with a closed plane ledger
    /// and zero liveness/grid violations.
    #[test]
    fn prop_chaos_regimes_replay_bit_identically(
        seed in 1u64..1_000_000,
        churn_pct in 0u32..30,
        rejoin_after in 0u32..4,
        has_partition in any::<bool>(),
        drop_pct in 0u32..10,
        delay_pct in 0u32..10,
        shards in 2usize..6,
        hints in any::<bool>(),
    ) {
        let fault_cfg = FaultConfig {
            churn_rate: churn_pct as f64 / 100.0,
            rejoin_after,
            partition: has_partition.then_some(PartitionWindow {
                start_round: 1,
                end_round: 3,
                fraction: 0.4,
            }),
            drop_rate: drop_pct as f64 / 100.0,
            delay_rate: delay_pct as f64 / 100.0,
            rounds: 5,
        };
        let reference = drive_faulted(seed, 1, DriveMode::Tick, &fault_cfg, hints);
        let other = drive_faulted(seed, shards, DriveMode::Event, &fault_cfg, hints);
        prop_assert_eq!(&other, &reference, "chaos run diverged");
        // No tombstoned contact outlives its TTL; tombstoned/rejoined
        // nodes stay resident in their grid cells.
        prop_assert_eq!(reference.0.fault_report.liveness_violations, 0);
        prop_assert_eq!(reference.0.fault_report.grid_audit_violations, 0);
        // The plane ledger closes with faulted deliveries accounted.
        let (sent, dropped, _delayed, delivered) = reference.0.plane_totals;
        prop_assert_eq!(
            sent,
            delivered + dropped + reference.0.deferred as u64,
            "plane ledger must account drops and deferrals"
        );
    }
}

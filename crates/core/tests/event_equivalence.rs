//! Differential harness pinning the event-driven core to the tick
//! reference.
//!
//! Two identical worlds are driven through the same virtual timeline and
//! the same workload — one by a [`DriveMode::Tick`] driver (every region
//! wakes every tick, the faithful re-skeleton of `run_mobile`), one by a
//! [`DriveMode::Event`] driver (quiescent regions sleep through their
//! still windows). At every synchronization instant (each `drive` segment
//! boundary) the full observable state must be **bit-identical**:
//! canonical CSR adjacency, per-node neighborhood tables (members and hop
//! distances), contact tables (ids and paths), exact node positions, the
//! bucketed message-statistics series, the contacts time series,
//! maintenance totals, standing-query state, and hint counters. The two
//! worlds also run with *different protocol shard counts*, folding the
//! sharding-invariance contract into the same differential.

use card_core::prelude::*;
use mobility::statics::StaticModel;
use mobility::walk::RandomWalk;
use mobility::waypoint::RandomWaypoint;
use net_topology::geometry::{Field, Point2};
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use proptest::prelude::*;
use sim_core::rng::SeedSplitter;
use sim_core::stats::MsgKind;
use sim_core::time::{SimDuration, SimTime};

const NODES: usize = 120;

fn scenario() -> Scenario {
    Scenario::new(NODES, 450.0, 450.0, 60.0)
}

fn cfg(seed: u64) -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(2)
        .with_seed(seed)
}

/// Which mobility mix a differential case runs.
#[derive(Clone, Copy, Debug)]
enum ModelKind {
    /// Heavy-dwell random walks: the quiescence-skipping regime.
    Dwell,
    /// Always-walking random walks: event mode degenerates to tick mode.
    Walk,
    /// A static region stacked with a dwell region.
    Mixed,
    /// Random waypoint (no `quiescent_for`): every region ticks.
    Waypoint,
}

/// Build one mobility partition. Called once per world with identical
/// arguments, so both sides own bit-identical models.
fn partition(
    kind: ModelKind,
    regions: usize,
    pause: f64,
    seed: u64,
    field: Field,
) -> mobility::RegionalMobility {
    let mut m = mobility::RegionalMobility::new();
    let split = NODES / regions.max(1);
    let mut placed = 0usize;
    for r in 0..regions.max(1) {
        let len = if r + 1 == regions.max(1) {
            NODES - placed
        } else {
            split
        };
        placed += len;
        let stream = SeedSplitter::new(seed).stream("mobility", r as u64);
        let model: Box<dyn mobility::MobilityModel> = match kind {
            ModelKind::Dwell => Box::new(RandomWalk::new_with_dwell(
                len, field, 0.5, 2.0, 2.0, pause, stream,
            )),
            ModelKind::Walk => Box::new(RandomWalk::new(len, field, 0.5, 4.0, 1.5, stream)),
            ModelKind::Mixed if r == 0 => Box::new(StaticModel),
            ModelKind::Mixed => Box::new(RandomWalk::new_with_dwell(
                len, field, 0.5, 2.0, 2.0, pause, stream,
            )),
            ModelKind::Waypoint => Box::new(RandomWaypoint::new(len, field, 0.5, 3.0, 0.5, stream)),
        };
        m.push_region(len, model);
    }
    m
}

/// A deterministic query/standing workload spread over the timeline.
fn workload(seed: u64, horizon_ms: u64) -> Vec<Arrival> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..14u32)
        .map(|i| {
            let at = SimDuration::from_millis(next() % horizon_ms.max(1));
            let source = NodeId::new((next() % NODES as u64) as u32);
            let target = NodeId::new((next() % NODES as u64) as u32);
            let kind = if i % 3 == 0 {
                ArrivalKind::Standing { source, target }
            } else {
                ArrivalKind::Query { source, target }
            };
            Arrival { at, kind }
        })
        .collect()
}

/// The full observable state the two drive modes must agree on, bit for
/// bit, at every synchronization instant.
#[derive(Debug, PartialEq)]
struct Snapshot {
    now: SimTime,
    positions: Vec<Point2>,
    csr: (Vec<u32>, Vec<NodeId>),
    neighborhoods: Vec<(Vec<NodeId>, Vec<u16>)>,
    contacts: Vec<Vec<(NodeId, Vec<NodeId>)>>,
    msg_series: Vec<u64>,
    contacts_series: Vec<(SimTime, f64)>,
    maintenance: card_core::world::MaintenanceTotals,
    standing: StandingQueries,
    hint_stats: HintStats,
}

fn snapshot(w: &CardWorld) -> Snapshot {
    let net = w.network();
    let neighborhoods = (0..net.node_count())
        .map(|i| {
            let nb = net.tables().of(NodeId::from(i));
            let members = nb.members().to_vec();
            let dists = members
                .iter()
                .map(|&m| nb.distance(m).expect("member has a distance"))
                .collect();
            (members, dists)
        })
        .collect();
    let contacts = w
        .contact_tables()
        .iter()
        .map(|t| {
            t.contacts()
                .iter()
                .map(|c| (c.id, c.path.clone()))
                .collect()
        })
        .collect();
    Snapshot {
        now: w.now(),
        positions: net.positions().to_vec(),
        csr: net.adj().canonical_csr(),
        neighborhoods,
        contacts,
        msg_series: w.stats().series_where(|_| true),
        contacts_series: w.contacts_series().points().to_vec(),
        maintenance: w.maintenance_totals().clone(),
        standing: w.standing_queries().clone(),
        hint_stats: w.hint_stats().clone(),
    }
}

/// Build a prepared world: scenario placement, contact selection done.
fn world(seed: u64, shards: usize, hints: bool) -> CardWorld {
    let mut w = CardWorld::build(&scenario(), cfg(seed).with_hints(hints));
    w.set_shard_count(shards);
    w.select_all_contacts();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential: for random seeds, mobility mixes, shard
    /// counts and segment splits, the event-driven world is bit-identical
    /// to the tick-driven world at every segment boundary, and their
    /// workload outcomes agree entry for entry.
    #[test]
    fn prop_event_and_tick_worlds_are_bit_identical(
        seed in 1u64..1_000_000,
        kind_ix in 0usize..4,
        regions in 1usize..4,
        pause_pct in 85u32..100,
        tick_shards in 1usize..7,
        event_shards in 1usize..7,
        hints in any::<bool>(),
        splits in proptest::collection::vec(300u64..1400, 1..4),
    ) {
        let kind = [ModelKind::Dwell, ModelKind::Walk, ModelKind::Mixed, ModelKind::Waypoint][kind_ix];
        let pause = pause_pct as f64 / 100.0;
        let horizon_ms: u64 = splits.iter().sum();

        let mut tick_world = world(seed, tick_shards, hints);
        let mut tick_model = partition(kind, regions, pause, seed, tick_world.network().field());
        let mut tick_driver = EventDriver::new(
            &tick_world, &tick_model, DriveMode::Tick, workload(seed, horizon_ms));

        let mut ev_world = world(seed, event_shards, hints);
        let mut ev_model = partition(kind, regions, pause, seed, ev_world.network().field());
        let mut ev_driver = EventDriver::new(
            &ev_world, &ev_model, DriveMode::Event, workload(seed, horizon_ms));

        for (i, &ms) in splits.iter().enumerate() {
            let d = SimDuration::from_millis(ms);
            tick_driver.drive(&mut tick_world, &mut tick_model, d);
            ev_driver.drive(&mut ev_world, &mut ev_model, d);
            prop_assert_eq!(
                snapshot(&ev_world),
                snapshot(&tick_world),
                "worlds diverged after segment {} ({:?}, regions {}, pause {})",
                i, kind, regions, pause
            );
        }
        // Workload observables agree entry for entry.
        prop_assert_eq!(&tick_driver.report().outcomes, &ev_driver.report().outcomes);
        prop_assert_eq!(
            &tick_driver.report().standing_registered,
            &ev_driver.report().standing_registered
        );
        prop_assert_eq!(tick_driver.report().arrivals, ev_driver.report().arrivals);
        prop_assert_eq!(
            tick_driver.report().validation_rounds,
            ev_driver.report().validation_rounds
        );
        // Event mode may only elide work, never add it.
        prop_assert!(
            ev_driver.report().events_processed <= tick_driver.report().events_processed
        );
        prop_assert_eq!(tick_driver.report().audit_violations, 0);
        prop_assert_eq!(ev_driver.report().audit_violations, 0);
    }

    /// Hint TTL counts validation *epochs*, not wall time: stretching the
    /// validation period by an arbitrary dilation factor (so the same
    /// epochs happen at very different virtual instants) leaves every hint
    /// counter — hits, deposits, TTL expiries — bit-identical, as long as
    /// the epoch sequence matches.
    #[test]
    fn prop_hint_ttl_counts_epochs_not_wall_time(
        seed in 1u64..1_000_000,
        ttl in 1u32..5,
        dilation in 2u64..9,
        rounds in 1u32..8,
    ) {
        let run = |period_secs: u64| {
            let mut config = cfg(seed).with_hints(true).with_hint_ttl(ttl);
            config.validation_period = SimDuration::from_secs(period_secs);
            let mut w = CardWorld::build(&scenario(), config);
            w.select_all_contacts();
            let mut model = mobility::RegionalMobility::new();
            model.push_region(NODES, Box::new(StaticModel));
            let mut driver = EventDriver::new(&w, &model, DriveMode::Event, Vec::new());
            let pairs: Vec<(NodeId, NodeId)> = (0..40u32)
                .map(|i| (NodeId::new(i % NODES as u32), NodeId::new((i * 37 + 5) % NODES as u32)))
                .collect();
            // Warm the cache, age it by `rounds` epochs (wall spacing is
            // `period_secs` apart), then probe it again.
            let warm = w.query_all(&pairs);
            driver.drive(&mut w, &mut model, SimDuration::from_secs(period_secs * rounds as u64));
            let probe = w.query_all(&pairs);
            (warm, probe, w.hint_stats().clone(), w.hint_store().map(|s| s.epoch()))
        };
        let tight = run(1);
        let dilated = run(dilation);
        prop_assert_eq!(&tight.0, &dilated.0, "warm sweeps must agree");
        prop_assert_eq!(&tight.1, &dilated.1, "aged sweeps must agree");
        prop_assert_eq!(&tight.2, &dilated.2, "hint counters must be wall-time independent");
        prop_assert_eq!(tight.3, dilated.3, "epoch counts must match");
    }
}

/// Standing queries break and re-resolve under churn, and both drive modes
/// agree on every lifecycle count (non-proptest smoke so failures name the
/// exact counter).
#[test]
fn standing_queries_survive_churn_identically() {
    let build = |mode: DriveMode, shards: usize| {
        let mut w = world(77, shards, false);
        let mut model = partition(ModelKind::Dwell, 2, 0.90, 77, w.network().field());
        let mut driver = EventDriver::new(&w, &model, mode, workload(77, 5_000));
        driver.drive(&mut w, &mut model, SimDuration::from_secs(5));
        let probes = w.stats().total(MsgKind::StandingProbe);
        (snapshot(&w), driver.report().clone(), probes)
    };
    let (tick_snap, tick_report, tick_probes) = build(DriveMode::Tick, 1);
    let (ev_snap, ev_report, ev_probes) = build(DriveMode::Event, 5);
    assert_eq!(ev_snap, tick_snap);
    assert_eq!(ev_report.outcomes, tick_report.outcomes);
    assert_eq!(ev_probes, tick_probes);
    let stats = tick_snap.standing.stats().clone();
    assert!(
        stats.registered >= 4,
        "workload registers subscriptions: {stats:?}"
    );
    assert!(
        stats.revalidations > 0,
        "validation rounds must recheck standing chains: {stats:?}"
    );
}

//! Shared infrastructure for the criterion benches and the CI bench-id
//! guard. The benchmarks themselves live in `benches/`; run them with
//! `cargo bench --workspace` (set `BENCH_JSON=<path>` to record a
//! machine-readable baseline, `BENCH_QUICK=1` for the fast CI profile).

use std::time::Duration;

/// The criterion configuration every microbench group uses.
///
/// Default profile: 20 samples, 500 ms warm-up, 2 s measurement (the
/// profile `BENCH_topology.json` baselines were recorded with). With
/// `BENCH_QUICK` set (to anything but `0`), a drastically shortened
/// profile runs instead — noisy numbers, but every benchmark id still
/// executes and lands in `BENCH_JSON`, which is all the CI id-drift guard
/// needs.
pub fn config() -> criterion::Criterion {
    if quick_mode() {
        criterion::Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(250))
    } else {
        criterion::Criterion::default()
            .sample_size(20)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2))
    }
}

/// Is the `BENCH_QUICK` fast profile active?
pub fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One `(id, median_ns)` row of a `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Full benchmark id (`group/name` or bare `name`).
    pub id: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
}

/// Parse the `BENCH_*.json` format written by the vendored criterion's
/// `flush_json` (a JSON array of flat objects with string `id` and numeric
/// `median_ns` fields, one object per line). Returns rows in file order.
///
/// This is a purpose-built parser for that fixed, self-produced format —
/// not a general JSON parser.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue; // array brackets / blank lines
        }
        let id = extract_string_field(line, "id")
            .ok_or_else(|| format!("line {}: no \"id\" field in {line}", lineno + 1))?;
        let median_ns = extract_number_field(line, "median_ns")
            .ok_or_else(|| format!("line {}: no \"median_ns\" field in {line}", lineno + 1))?;
        rows.push(BenchRow { id, median_ns });
    }
    Ok(rows)
}

fn extract_string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // ids are written with `"` escaped as `\"`
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

fn extract_number_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Result of diffing a freshly recorded bench run against the committed
/// baseline.
#[derive(Clone, Debug, Default)]
pub struct BenchDiff {
    /// `(id, baseline median, new median)` for ids present in both.
    pub matched: Vec<(String, f64, f64)>,
    /// Baseline ids absent from the new run — the failure condition
    /// (a benchmark was renamed or dropped without updating the baseline).
    pub missing: Vec<String>,
    /// Ids only in the new run (newly added benchmarks; informational).
    pub added: Vec<String>,
}

/// Compare baseline rows against newly recorded rows by id.
pub fn diff(baseline: &[BenchRow], new: &[BenchRow]) -> BenchDiff {
    let mut out = BenchDiff::default();
    for b in baseline {
        match new.iter().find(|n| n.id == b.id) {
            Some(n) => out.matched.push((b.id.clone(), b.median_ns, n.median_ns)),
            None => out.missing.push(b.id.clone()),
        }
    }
    for n in new {
        if !baseline.iter().any(|b| b.id == n.id) {
            out.added.push(n.id.clone());
        }
    }
    out
}

/// Render the perf-trend table (markdown-ish, printed by the CI step).
pub fn render_trend(diff: &BenchDiff) -> String {
    let mut out = String::from("| benchmark id | baseline median | current median | ratio |\n");
    out.push_str("|---|---|---|---|\n");
    for (id, base, new) in &diff.matched {
        out.push_str(&format!(
            "| {id} | {} | {} | {:.2}x |\n",
            fmt_ns(*base),
            fmt_ns(*new),
            new / base
        ));
    }
    for id in &diff.added {
        out.push_str(&format!("| {id} | — (new) | recorded | — |\n"));
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "adjacency_rebuild/n250", "min_ns": 15083.5, "median_ns": 15577.5, "mean_ns": 15618.2, "samples": 20, "iters_per_sample": 5321},
  {"id": "topology_refresh/n1000/incremental", "min_ns": 645006.2, "median_ns": 675667.9, "mean_ns": 674426.8, "samples": 20, "iters_per_sample": 149}
]
"#;

    #[test]
    fn parses_the_flush_json_format() {
        let rows = parse_bench_json(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "adjacency_rebuild/n250");
        assert!((rows[0].median_ns - 15577.5).abs() < 1e-9);
        assert_eq!(rows[1].id, "topology_refresh/n1000/incremental");
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(parse_bench_json("[\n  {\"median_ns\": 3.0}\n]").is_err());
        assert!(parse_bench_json("[\n  {\"id\": \"x\"}\n]").is_err());
        assert!(parse_bench_json("[]").unwrap().is_empty());
    }

    #[test]
    fn diff_classifies_ids() {
        let baseline = parse_bench_json(SAMPLE).unwrap();
        let new = vec![
            BenchRow {
                id: "adjacency_rebuild/n250".into(),
                median_ns: 31155.0,
            },
            BenchRow {
                id: "grid_rebucket/n1000/mover_update".into(),
                median_ns: 5.0,
            },
        ];
        let d = diff(&baseline, &new);
        assert_eq!(d.matched.len(), 1);
        assert_eq!(d.missing, vec!["topology_refresh/n1000/incremental"]);
        assert_eq!(d.added, vec!["grid_rebucket/n1000/mover_update"]);
        let trend = render_trend(&d);
        assert!(
            trend.contains("2.00x"),
            "trend table shows the ratio: {trend}"
        );
        assert!(trend.contains("(new)"));
    }

    #[test]
    fn both_config_profiles_build() {
        // the env var is process-global, so only exercise the constructors
        let _ = config();
        let _ = quick_mode();
    }
}

//! Benchmark-only crate: all content lives in `benches/`.
//! Run with `cargo bench --workspace`.

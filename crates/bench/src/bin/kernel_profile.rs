//! Phase-level timing breakdown of the parallel CSR rebuild at N=10⁴.
//! Dev tool, not a recorded benchmark: run `cargo run --release -p bench
//! --bin kernel_profile` to see where rebuild wall time goes.

use experiments::scale::scaled_scenario;
use net_topology::graph::Adjacency;
use net_topology::grid::SpatialGrid;
use net_topology::node::NodeId;
use net_topology::plane::{KernelScratch, PositionPlane};
use std::time::Instant;

fn main() {
    let n = 10_000usize;
    let iters = 100u32;
    let scenario = scaled_scenario(n);
    let (positions, _) = scenario.instantiate(9);
    let mut grid = SpatialGrid::new(scenario.field(), scenario.tx_range);
    let mut adj = Adjacency::build_with_grid(&mut grid, &positions, scenario.tx_range);
    let mut plane = PositionPlane::new();
    let mut scratch = KernelScratch::new();
    for _ in 0..3 {
        adj.rebuild_with_grid_parallel(
            &mut grid,
            &mut plane,
            &positions,
            scenario.tx_range,
            &mut scratch,
        );
    }

    let t = Instant::now();
    for _ in 0..iters {
        adj.rebuild_with_grid_parallel(
            &mut grid,
            &mut plane,
            &positions,
            scenario.tx_range,
            &mut scratch,
        );
    }
    println!("full parallel      {:>10.1?}", t.elapsed() / iters);

    let t = Instant::now();
    for _ in 0..iters {
        adj.rebuild_with_grid(&mut grid, &positions, scenario.tx_range);
    }
    println!("full serial        {:>10.1?}", t.elapsed() / iters);

    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(grid.update(&positions));
    }
    println!("grid.update        {:>10.1?}", t.elapsed() / iters);

    let t = Instant::now();
    for _ in 0..iters {
        plane.rebuild(&positions);
    }
    println!("plane.rebuild      {:>10.1?}", t.elapsed() / iters);

    let t = Instant::now();
    for _ in 0..iters {
        grid.fill_lane_mirror(&plane, &mut scratch);
    }
    println!("fill_lane_mirror   {:>10.1?}", t.elapsed() / iters);

    let band = plane.band(scenario.tx_range, grid.cell_side());
    let mut rows: Vec<NodeId> = Vec::with_capacity(n * 12);
    let mut lens: Vec<u32> = Vec::with_capacity(n);

    let t = Instant::now();
    for _ in 0..iters {
        rows.clear();
        for i in 0..n {
            grid.for_each_within_mirror(
                band,
                &positions,
                positions[i],
                Some(NodeId::from(i)),
                &mut scratch,
                |id| rows.push(id),
            );
        }
    }
    println!("query only         {:>10.1?}", t.elapsed() / iters);
    std::hint::black_box(&rows);

    let t = Instant::now();
    for _ in 0..iters {
        rows.clear();
        lens.clear();
        for i in 0..n {
            let start = rows.len();
            grid.for_each_within_mirror(
                band,
                &positions,
                positions[i],
                Some(NodeId::from(i)),
                &mut scratch,
                |id| rows.push(id),
            );
            rows[start..].sort_unstable();
            lens.push((rows.len() - start) as u32);
        }
    }
    println!("query + sort       {:>10.1?}", t.elapsed() / iters);
    std::hint::black_box((&rows, &lens));
}

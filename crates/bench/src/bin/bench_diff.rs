//! `bench_diff` — the CI bench-id drift guard.
//!
//! ```text
//! bench_diff <baseline.json> <current.json>
//! ```
//!
//! Compares a freshly recorded `BENCH_JSON` run against the committed
//! baseline (`BENCH_topology.json`): prints a perf-trend table for every
//! matched id, lists newly added ids, and **fails (exit 1) if any baseline
//! id is missing or renamed** — keeping benchmark ids stable so the
//! baseline file stays a longitudinal trend line rather than silently
//! rotating its rows.

use bench::{diff, parse_bench_json, render_trend};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <current.json>");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);
    let d = diff(&baseline, &current);

    println!(
        "perf trend vs {baseline_path} ({} matched, {} new):\n",
        d.matched.len(),
        d.added.len()
    );
    println!("{}", render_trend(&d));

    if !d.missing.is_empty() {
        eprintln!("error: benchmark ids in {baseline_path} but absent from {current_path}:");
        for id in &d.missing {
            eprintln!("  - {id}");
        }
        eprintln!("(renamed or dropped a benchmark? update the baseline file in the same change)");
        std::process::exit(1);
    }
}

fn load(path: &str) -> Vec<bench::BenchRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_bench_json(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

//! Micro-benchmarks of the hot substrate paths.
//!
//! These are the inner loops every experiment leans on: event scheduling,
//! connectivity rebuilds, hop-limited BFS, bitset unions (reachability) and
//! single CSQ walks. Useful for catching performance regressions that the
//! end-to-end figure benches would only show indirectly.

use card_core::csq::select_contacts;
use card_core::{CardConfig, ContactTable};
use criterion::{criterion_group, criterion_main, Criterion};
use manet_routing::neighborhood::NeighborhoodTables;
use manet_routing::network::Network;
use mobility::waypoint::RandomWaypoint;
use net_topology::bfs::khop_bfs;
use net_topology::node::NodeId;
use net_topology::scenario::SCENARIO_5;
use sim_core::engine::Engine;
use sim_core::rng::{RngStream, SeedSplitter};
use sim_core::stats::MsgStats;
use sim_core::time::{SimDuration, SimTime};
use sim_core::util::BitSet;
use std::hint::black_box;
use std::time::Duration;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine_schedule_drain_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            for i in 0..10_000u32 {
                engine.schedule_at(SimTime::from_ticks((i as u64 * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = engine.next_event() {
                acc += v as u64;
            }
            black_box(acc)
        })
    });
}

fn bench_topology_build(c: &mut Criterion) {
    let scenario = SCENARIO_5;
    c.bench_function("scenario5_build_adjacency", |b| {
        b.iter(|| black_box(scenario.instantiate(black_box(3))))
    });
}

fn bench_neighborhood_tables(c: &mut Criterion) {
    let (_, adj) = SCENARIO_5.instantiate(3);
    c.bench_function("scenario5_tables_r3", |b| {
        b.iter(|| black_box(NeighborhoodTables::compute(black_box(&adj), 3)))
    });
}

fn bench_khop_bfs(c: &mut Criterion) {
    let (_, adj) = SCENARIO_5.instantiate(3);
    c.bench_function("khop_bfs_r3_all_sources", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in NodeId::all(adj.node_count()) {
                total += khop_bfs(&adj, src, 3).visited_count();
            }
            black_box(total)
        })
    });
}

fn bench_mobility_tick(c: &mut Criterion) {
    let scenario = SCENARIO_5;
    c.bench_function("network_mobility_tick_500", |b| {
        let mut net = Network::from_scenario(&scenario, 3, 3);
        let mut model = RandomWaypoint::new(
            scenario.nodes,
            scenario.field(),
            1.0,
            5.0,
            0.0,
            RngStream::seed_from_u64(5),
        );
        b.iter(|| {
            net.advance(&mut model, SimDuration::from_millis(100));
            black_box(net.adj().link_count())
        })
    });
}

fn bench_bitset_union(c: &mut Criterion) {
    let mut sets = Vec::new();
    let mut rng = RngStream::seed_from_u64(9);
    for _ in 0..64 {
        let mut s = BitSet::new(1000);
        for _ in 0..50 {
            s.insert(rng.index(1000));
        }
        sets.push(s);
    }
    c.bench_function("bitset_union_64x1000", |b| {
        b.iter(|| {
            let mut acc = BitSet::new(1000);
            for s in &sets {
                acc.union_with(s);
            }
            black_box(acc.len())
        })
    });
}

fn bench_csq_walk(c: &mut Criterion) {
    let net = Network::from_scenario(&SCENARIO_5, 3, 3);
    let cfg = CardConfig::default()
        .with_radius(3)
        .with_max_contact_distance(16)
        .with_target_contacts(5);
    let splitter = SeedSplitter::new(11);
    c.bench_function("select_contacts_one_source", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let mut rng = splitter.stream("bench", i);
            i += 1;
            let mut table = ContactTable::new();
            let mut stats = MsgStats::default();
            select_contacts(
                &net,
                &cfg,
                NodeId::new(0),
                &mut table,
                &mut rng,
                &mut stats,
                SimTime::ZERO,
            );
            black_box(table.len())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets =
        bench_event_queue,
        bench_topology_build,
        bench_neighborhood_tables,
        bench_khop_bfs,
        bench_mobility_tick,
        bench_bitset_union,
        bench_csq_walk,
}
criterion_main!(micro);

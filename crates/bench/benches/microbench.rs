//! Micro-benchmarks of the hot substrate paths.
//!
//! These are the inner loops every experiment leans on: event scheduling,
//! connectivity rebuilds, grid re-bucketing, hop-limited BFS, bitset unions
//! (reachability) and single CSQ walks. Useful for catching performance
//! regressions that the end-to-end figure benches would only show
//! indirectly.
//!
//! Recorded baselines live in `BENCH_topology.json`; regenerate with
//! `BENCH_JSON=BENCH_topology.json cargo bench -p bench --bench microbench`.
//! Benchmark **ids are stable across PRs** (the CI `bench_diff` step fails
//! on missing/renamed ids) so the file doubles as a perf trend line. CI
//! runs this file under `BENCH_QUICK=1` (see [`bench::config`]).

use card_core::csq::{select_contacts, CsqScratch, ALL_EDGE_NODES};
use card_core::hints::{HintStats, HintStore};
use card_core::query::{dsq_query, dsq_query_hinted, dsq_query_rewalk, HintContext, QueryScratch};
use card_core::{CardConfig, ContactTable};
use criterion::{criterion_group, criterion_main, Criterion};
// scenario-5 density scaled to N nodes — shared with the scale experiments
// so benches and `repro scale` can never drift apart
use experiments::scale::scaled_scenario;
use manet_routing::neighborhood::NeighborhoodTables;
use manet_routing::network::Network;
use mobility::model::MobilityModel;
use mobility::walk::RandomWalk;
use mobility::waypoint::RandomWaypoint;
use net_topology::bfs::khop_bfs;
use net_topology::grid::SpatialGrid;
use net_topology::node::NodeId;
use net_topology::scenario::SCENARIO_5;
use sim_core::engine::Engine;
use sim_core::rng::{RngStream, SeedSplitter};
use sim_core::stats::MsgStats;
use sim_core::time::{SimDuration, SimTime};
use sim_core::util::BitSet;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine_schedule_drain_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            for i in 0..10_000u32 {
                engine.schedule_at(SimTime::from_ticks((i as u64 * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = engine.next_event() {
                acc += v as u64;
            }
            black_box(acc)
        })
    });
}

fn bench_topology_build(c: &mut Criterion) {
    let scenario = SCENARIO_5;
    c.bench_function("scenario5_build_adjacency", |b| {
        b.iter(|| black_box(scenario.instantiate(black_box(3))))
    });
}

fn bench_neighborhood_tables(c: &mut Criterion) {
    let (_, adj) = SCENARIO_5.instantiate(3);
    c.bench_function("scenario5_tables_r3", |b| {
        b.iter(|| black_box(NeighborhoodTables::compute(black_box(&adj), 3)))
    });
}

fn bench_khop_bfs(c: &mut Criterion) {
    let (_, adj) = SCENARIO_5.instantiate(3);
    c.bench_function("khop_bfs_r3_all_sources", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in NodeId::all(adj.node_count()) {
                total += khop_bfs(&adj, src, 3).visited_count();
            }
            black_box(total)
        })
    });
}

fn bench_mobility_tick(c: &mut Criterion) {
    let scenario = SCENARIO_5;
    c.bench_function("network_mobility_tick_500", |b| {
        let mut net = Network::from_scenario(&scenario, 3, 3);
        let mut model = RandomWaypoint::new(
            scenario.nodes,
            scenario.field(),
            1.0,
            5.0,
            0.0,
            RngStream::seed_from_u64(5),
        );
        b.iter(|| {
            net.advance(&mut model, SimDuration::from_millis(100));
            black_box(net.adj().link_count())
        })
    });
}

/// CSR adjacency rebuild from the spatial grid, N ∈ {250, 1000, 10000}
/// (the n10000 id joined with the mover-driven pipeline as the full-path
/// baseline the `adjacency_patch` benches are judged against). The
/// `/parallel` id is the SoA-kernel + row-span rebuild
/// (`rebuild_with_grid_parallel`) at n10000 — canonical-CSR-identical to
/// the scalar id, measured against it.
fn bench_adjacency_rebuild(c: &mut Criterion) {
    for n in [250usize, 1000, 10_000] {
        let scenario = scaled_scenario(n);
        let (positions, _) = scenario.instantiate(9);
        let mut grid = net_topology::grid::SpatialGrid::new(scenario.field(), scenario.tx_range);
        let mut adj = net_topology::graph::Adjacency::build_with_grid(
            &mut grid,
            &positions,
            scenario.tx_range,
        );
        c.bench_function(format!("adjacency_rebuild/n{n}"), |b| {
            b.iter(|| {
                adj.rebuild_with_grid(&mut grid, black_box(&positions), scenario.tx_range);
                black_box(adj.link_count())
            })
        });
        if n == 10_000 {
            let mut plane = net_topology::plane::PositionPlane::new();
            let mut scratch = net_topology::plane::KernelScratch::new();
            c.bench_function(format!("adjacency_rebuild/n{n}/parallel"), |b| {
                b.iter(|| {
                    adj.rebuild_with_grid_parallel(
                        &mut grid,
                        &mut plane,
                        black_box(&positions),
                        scenario.tx_range,
                        &mut scratch,
                    );
                    black_box(adj.link_count())
                })
            });
        }
    }
}

/// The cell-ball range scan head-to-head at n10000: the scalar f64 walk
/// (`for_each_within`), the per-row gather kernel the patch path uses
/// (`for_each_within_kernel`), and the entry-aligned mirror kernel the
/// parallel rebuild streams (`for_each_within_mirror`, mirror fill
/// amortized outside the timed region as in a real rebuild). Each id
/// sweeps the same 512 query centers.
fn bench_grid_kernel_scan(c: &mut Criterion) {
    use net_topology::plane::{KernelScratch, PositionPlane};
    let n = 10_000usize;
    let scenario = scaled_scenario(n);
    let (positions, _) = scenario.instantiate(9);
    let mut grid = SpatialGrid::new(scenario.field(), scenario.tx_range);
    grid.rebuild(&positions);
    let plane = PositionPlane::with_positions(&positions);
    let centers: Vec<NodeId> = (0..512).map(|k| NodeId::from(k * 19 % n)).collect();
    let mut group = c.benchmark_group(format!("grid_kernel_scan/n{n}"));
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut visited = 0usize;
            for &q in &centers {
                grid.for_each_within(
                    &positions,
                    positions[q.index()],
                    scenario.tx_range,
                    Some(q),
                    |_| visited += 1,
                );
            }
            black_box(visited)
        })
    });
    group.bench_function("gather", |b| {
        let mut scratch = KernelScratch::new();
        b.iter(|| {
            let mut visited = 0usize;
            for &q in &centers {
                grid.for_each_within_kernel(
                    &plane,
                    &positions,
                    positions[q.index()],
                    scenario.tx_range,
                    Some(q),
                    &mut scratch,
                    |_| visited += 1,
                );
            }
            black_box(visited)
        })
    });
    group.bench_function("mirror", |b| {
        let mut scratch = KernelScratch::new();
        grid.fill_lane_mirror(&plane, &mut scratch);
        let band = plane.band(scenario.tx_range, grid.cell_side());
        b.iter(|| {
            let mut visited = 0usize;
            for &q in &centers {
                grid.for_each_within_mirror(
                    band,
                    &positions,
                    positions[q.index()],
                    Some(q),
                    &mut scratch,
                    |_| visited += 1,
                );
            }
            black_box(visited)
        })
    });
    group.finish();
}

/// Mover-only grid re-bucketing vs full counting-sort relayout at
/// N ∈ {1000, 10000}, under the same pedestrian random-walk statistics as
/// the refresh bench. Position snapshots are precomputed (one per 100 ms
/// tick) and replayed ping-pong, so the timed region is *grid work only* —
/// not the mobility model. Per tick only the nodes that crossed a 50 m
/// cell boundary are re-bucketed (an O(1) swap each), so the mover path
/// should sit well under the full relayout that used to run every tick.
fn bench_grid_rebucket(c: &mut Criterion) {
    for n in [1000usize, 10_000] {
        let scenario = scaled_scenario(n);
        // Precompute a tick-by-tick trajectory; ping-pong playback keeps
        // every measured step a single tick of motion.
        let snapshots: Vec<Vec<net_topology::geometry::Point2>> = {
            let (mut positions, _) = scenario.instantiate(11);
            let mut model = RandomWalk::new(
                n,
                scenario.field(),
                0.5,
                2.0,
                10.0,
                RngStream::seed_from_u64(17),
            );
            let mut snaps = vec![positions.clone()];
            for _ in 0..63 {
                model.advance(&mut positions, SimDuration::from_millis(100));
                snaps.push(positions.clone());
            }
            snaps
        };
        let bounce = |i: usize| {
            let period = 2 * (snapshots.len() - 1);
            let k = i % period;
            if k < snapshots.len() {
                k
            } else {
                period - k
            }
        };
        let mut group = c.benchmark_group(format!("grid_rebucket/n{n}"));
        let mut run = |label: &str, incremental: bool| {
            group.bench_function(label, |b| {
                let mut grid = SpatialGrid::new(scenario.field(), scenario.tx_range);
                grid.rebuild(&snapshots[0]);
                let mut i = 0usize;
                b.iter(|| {
                    i += 1;
                    let positions = &snapshots[bounce(i)];
                    if incremental {
                        black_box(grid.update(positions));
                    } else {
                        grid.rebuild(positions);
                    }
                })
            });
        };
        run("mover_update", true);
        run("full_rebuild", false);
        group.finish();
    }
}

/// A precomputed tick-by-tick mobility trace: position snapshots plus the
/// exact mover report of each transition (`movers[t]` is the diff between
/// snapshots `t-1` and `t`). Benches replay it ping-pong so the timed
/// region is pipeline work only, never the mobility model — and because a
/// reversed transition moves exactly the same node set, the recorded
/// report stays exact in both directions.
struct MobilityTrace {
    snapshots: Vec<Vec<net_topology::geometry::Point2>>,
    movers: Vec<Vec<NodeId>>,
}

impl MobilityTrace {
    fn record(
        scenario: &net_topology::scenario::Scenario,
        model: &mut dyn MobilityModel,
        ticks: usize,
    ) -> Self {
        let (mut positions, _) = scenario.instantiate(11);
        let mut snapshots = vec![positions.clone()];
        let mut movers = vec![Vec::new()];
        for _ in 0..ticks {
            let mut report = Vec::new();
            model.advance_reporting(&mut positions, SimDuration::from_millis(100), &mut report);
            snapshots.push(positions.clone());
            movers.push(report);
        }
        MobilityTrace { snapshots, movers }
    }

    /// Snapshot index for iteration `i` of a ping-pong replay.
    fn bounce(&self, i: usize) -> usize {
        let period = 2 * (self.snapshots.len() - 1);
        let k = i % period;
        if k < self.snapshots.len() {
            k
        } else {
            period - k
        }
    }

    /// Mover report of the transition between adjacent snapshots `a`→`b`.
    fn transition_movers(&self, a: usize, b: usize) -> &[NodeId] {
        &self.movers[a.max(b)]
    }
}

/// The two mover-report bench workloads at N = 10000, scenario-5 density:
/// *pedestrian* is the walk-and-dwell mix (~1% of nodes walking at
/// 0.5–2 m/s per 100 ms tick — the few-movers regime the patch targets),
/// *vehicular* is full-churn random waypoint at 10–30 m/s (every node
/// moves every tick — measures the wholesale fallback honestly).
fn pipeline_traces(n: usize) -> Vec<(&'static str, MobilityTrace)> {
    let scenario = scaled_scenario(n);
    let mut pedestrian = RandomWalk::new_with_dwell(
        n,
        scenario.field(),
        0.5,
        2.0,
        10.0,
        experiments::scale::DWELL_PAUSE_PROB,
        RngStream::seed_from_u64(17),
    );
    let mut vehicular = RandomWaypoint::new(
        n,
        scenario.field(),
        10.0,
        30.0,
        0.0,
        RngStream::seed_from_u64(19),
    );
    vec![
        (
            "pedestrian",
            MobilityTrace::record(&scenario, &mut pedestrian, 63),
        ),
        (
            "vehicular",
            MobilityTrace::record(&scenario, &mut vehicular, 63),
        ),
    ]
}

/// Mover-driven CSR adjacency patching per tick at N = 10000. Under the
/// pedestrian (dwell) report the patch re-queries only the movers' cell
/// neighborhoods and must sit several times under the
/// `adjacency_rebuild/n10000` full path; under the vehicular report every
/// tick trips the churn fallback, pricing the wholesale path through the
/// patch entry point.
fn bench_adjacency_patch(c: &mut Criterion) {
    use net_topology::graph::PatchScratch;
    let n = 10_000usize;
    let scenario = scaled_scenario(n);
    let mut group = c.benchmark_group(format!("adjacency_patch/n{n}"));
    for (label, trace) in pipeline_traces(n) {
        group.bench_function(label, |b| {
            let mut grid = SpatialGrid::new(scenario.field(), scenario.tx_range);
            let mut adj = net_topology::graph::Adjacency::build_with_grid(
                &mut grid,
                &trace.snapshots[0],
                scenario.tx_range,
            );
            let mut scratch = PatchScratch::new();
            let mut changed = Vec::new();
            let mut prev = 0usize;
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let cur = trace.bounce(i);
                let movers = trace.transition_movers(prev, cur);
                let out = adj.patch_with_grid(
                    &mut grid,
                    &trace.snapshots[cur],
                    scenario.tx_range,
                    black_box(movers),
                    &mut changed,
                    &mut scratch,
                );
                prev = cur;
                black_box(out)
            })
        });
    }
    group.finish();
}

/// Reported-mover grid updates per tick at N = 10000: the residency check
/// runs only over the mobility model's report instead of scanning all N
/// positions (compare `grid_rebucket/n10000/mover_update`, which pays the
/// full scan every tick).
fn bench_grid_update_reported(c: &mut Criterion) {
    let n = 10_000usize;
    let scenario = scaled_scenario(n);
    let mut group = c.benchmark_group(format!("grid_update_reported/n{n}"));
    for (label, trace) in pipeline_traces(n) {
        group.bench_function(label, |b| {
            let mut grid = SpatialGrid::new(scenario.field(), scenario.tx_range);
            grid.rebuild(&trace.snapshots[0]);
            let mut prev = 0usize;
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let cur = trace.bounce(i);
                let movers = trace.transition_movers(prev, cur);
                let out = grid.update_reported(&trace.snapshots[cur], black_box(movers));
                prev = cur;
                black_box(out)
            })
        });
    }
    group.finish();
}

/// The mobility-tick topology refresh (adjacency rebuild + neighborhood
/// update) at N ∈ {250, 1000, 10000}: the incremental dirty-set path vs
/// the naive full-rebuild path, driven by identical mobility statistics —
/// pedestrian speeds (0.5–2 m/s) at the protocol's default 100 ms tick,
/// under the random-walk model (its stationary node distribution stays
/// uniform, so per-tick churn is constant over an arbitrarily long
/// measurement). The incremental path is the guard: it must stay well
/// ahead of full rebuild (≥ 2× at N = 1000 — see BENCH_topology.json for
/// the recorded baseline; the margin grows further at finer ticks or lower
/// speeds, and shrinks toward parity as per-tick churn approaches
/// whole-network scale). N = 10000 was added with the zone-local
/// membership refactor; the N ∈ {250, 1000} ids predate it and stay
/// unchanged for trend comparison.
fn bench_topology_refresh(c: &mut Criterion) {
    for n in [250usize, 1000, 10_000] {
        let scenario = scaled_scenario(n);
        let mut group = c.benchmark_group(format!("topology_refresh/n{n}"));
        let mut run = |label: &str, incremental: bool| {
            group.bench_function(label, |b| {
                let mut net = Network::from_scenario(&scenario, 2, 7);
                let mut model = RandomWalk::new(
                    n,
                    scenario.field(),
                    0.5,
                    2.0,
                    10.0,
                    RngStream::seed_from_u64(42),
                );
                b.iter(|| {
                    net.advance_positions_only(&mut model, SimDuration::from_millis(100));
                    if incremental {
                        net.refresh();
                    } else {
                        net.refresh_full();
                    }
                    black_box(net.adj().link_count())
                })
            });
        };
        run("incremental", true);
        run("full_rebuild", false);
        group.finish();
    }
}

/// End-to-end `Network` mobility tick under the dwell workload at
/// N = 10000 (~1% walkers per tick): the mover-driven production path
/// (`advance` → mover report → CSR patch → dirty balls seeded from
/// patched rows) against the report-free path (`advance_positions_only` +
/// `refresh`: wholesale rebuild + O(N) row diff) on identical mobility
/// statistics. This is the Network-level number behind the `repro scale`
/// ped-dwell rows — the whole-pipeline win including the double-buffer
/// snapshot copy and counter bookkeeping the patch path pays.
fn bench_topology_refresh_dwell(c: &mut Criterion) {
    let n = 10_000usize;
    let scenario = scaled_scenario(n);
    let mut group = c.benchmark_group(format!("topology_refresh_dwell/n{n}"));
    let mut run = |label: &str, mover_driven: bool| {
        group.bench_function(label, |b| {
            let mut net = Network::from_scenario(&scenario, 2, 7);
            let mut model = RandomWalk::new_with_dwell(
                n,
                scenario.field(),
                0.5,
                2.0,
                10.0,
                experiments::scale::DWELL_PAUSE_PROB,
                RngStream::seed_from_u64(42),
            );
            b.iter(|| {
                if mover_driven {
                    net.advance(&mut model, SimDuration::from_millis(100));
                } else {
                    net.advance_positions_only(&mut model, SimDuration::from_millis(100));
                    net.refresh();
                }
                black_box(net.last_dirty_count())
            })
        });
    };
    run("mover_driven", true);
    run("report_free", false);
    group.finish();
}

fn bench_bitset_union(c: &mut Criterion) {
    let mut sets = Vec::new();
    let mut rng = RngStream::seed_from_u64(9);
    for _ in 0..64 {
        let mut s = BitSet::new(1000);
        for _ in 0..50 {
            s.insert(rng.index(1000));
        }
        sets.push(s);
    }
    c.bench_function("bitset_union_64x1000", |b| {
        b.iter(|| {
            let mut acc = BitSet::new(1000);
            for s in &sets {
                acc.union_with(s);
            }
            black_box(acc.len())
        })
    });
}

fn bench_csq_walk(c: &mut Criterion) {
    let net = Network::from_scenario(&SCENARIO_5, 3, 3);
    let cfg = CardConfig::default()
        .with_radius(3)
        .with_max_contact_distance(16)
        .with_target_contacts(5);
    let splitter = SeedSplitter::new(11);
    c.bench_function("select_contacts_one_source", |b| {
        let mut i = 0u64;
        let mut scratch = CsqScratch::new();
        b.iter(|| {
            let mut rng = splitter.stream("bench", i);
            i += 1;
            let mut table = ContactTable::new();
            let mut stats = MsgStats::default();
            select_contacts(
                &net,
                &cfg,
                NodeId::new(0),
                &mut table,
                &mut rng,
                &mut stats,
                SimTime::ZERO,
                ALL_EDGE_NODES,
                &mut scratch,
            );
            black_box(table.len())
        })
    });
}

/// Whole-network protocol sweeps at N = 1000 (scenario-5 density):
/// the sharded parallel path vs the serial reference, for both
/// `select_all_contacts` (from-scratch CSQ selection for every node) and
/// `validation_round` (validate + throttled re-select for every node).
/// Protocol parameters mirror `experiments::scale::protocol_config` so
/// these ids track the same workload `repro scale` reports at N = 10⁴–10⁵.
///
/// Each iteration rebuilds the world: the sweeps mutate per-node state
/// (contact tables, RNG streams, backoff), so timing a repeated sweep on a
/// saturated world would measure the (cheap) "already at NoC" path instead
/// of real selection. Build cost is identical across the serial/parallel
/// variants, so the comparison stays honest even though absolute numbers
/// include it.
fn bench_protocol_sweeps(c: &mut Criterion) {
    let n = 1000usize;
    let scenario = scaled_scenario(n);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_seed(29);
    let net = Network::from_scenario(&scenario, 2, 29);

    let mut group = c.benchmark_group(format!("select_all_contacts/n{n}"));
    let mut run_select = |label: &str, parallel: bool| {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut w = card_core::CardWorld::from_network(net.clone(), cfg);
                if parallel {
                    w.select_all_contacts();
                } else {
                    w.select_all_contacts_serial();
                }
                black_box(w.total_contacts())
            })
        });
    };
    run_select("sharded", true);
    run_select("serial", false);
    group.finish();

    let mut group = c.benchmark_group(format!("validation_round/n{n}"));
    let mut run_validate = |label: &str, parallel: bool| {
        group.bench_function(label, |b| {
            // One selected world per variant; each iteration clones it so
            // every measured round validates the same full tables.
            let mut seeded = card_core::CardWorld::from_network(net.clone(), cfg);
            seeded.select_all_contacts();
            b.iter(|| {
                let mut w = seeded.clone();
                if parallel {
                    w.validation_round();
                } else {
                    w.validation_round_serial();
                }
                black_box(w.maintenance_totals().validated)
            })
        });
    };
    run_validate("sharded", true);
    run_validate("serial", false);
    group.finish();
}

/// The re-platformed query engine at N = 1000 (scenario-5 density, D = 3,
/// protocol parameters of `experiments::scale::protocol_config`), on a
/// world with selected contact tables and a fixed random pair list.
///
/// * `dsq_query/n1000/{incremental,rewalk}` — a 256-query batch through
///   the incremental escalation engine (one reused `QueryScratch`; depth d
///   only walks its final level) vs the from-scratch per-depth re-walk
///   reference, which also re-allocates its visited/frontier buffers per
///   attempt. Outcomes and message totals are bit-identical
///   (`tests/query_engine.rs`); only the cost may differ.
/// * `dsq_query/n1000/{hinted_cold,hinted_warm}` — the same 256-query
///   batch through the route-hint path (`card_core::hints`). *cold* starts
///   every iteration from an empty store and applies deposits after each
///   query (the live `CardWorld::query` semantics): it prices the overhead
///   hints add when nothing is cached. *warm* replays the batch against a
///   pre-warmed frozen store (the sharded-sweep read phase): it prices the
///   directed-probe path. Note what these guard: hints cut protocol
///   *messages* (the `repro scale` hint table), not simulator CPU —
///   lookup + probe-chase bookkeeping keeps warm wall time near the plain
///   walk at this N, and these ids exist to keep that overhead bounded.
/// * `query_sweep/n1000/{sharded,serial}` — the whole pair list through
///   the batched `CardWorld::query_all` fan-out (shard-owned scratches,
///   per-shard `MsgStats` deltas) vs the serial reference
///   (`query_all_serial`: one query at a time into the world's stats).
/// * `query_sweep/n1000/hinted` — the same pair list through `query_all`
///   on a hints-enabled, pre-warmed world (frozen-store parallel phase +
///   shard-order deposit application each sweep).
fn bench_query_engine(c: &mut Criterion) {
    let n = 1000usize;
    let scenario = scaled_scenario(n);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(3)
        .with_seed(29);
    let net = Network::from_scenario(&scenario, 2, 29);
    let mut world = card_core::CardWorld::from_network(net, cfg);
    world.select_all_contacts();
    let splitter = SeedSplitter::new(31);
    let mut pair_rng = splitter.stream("bench-query-pairs", 0);
    let pairs: Vec<(NodeId, NodeId)> = (0..2000)
        .map(|_| {
            (
                NodeId::from(pair_rng.index(n)),
                NodeId::from(pair_rng.index(n)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("dsq_query/n1000");
    group.bench_function("incremental", |b| {
        let mut scratch = QueryScratch::new();
        b.iter(|| {
            let mut stats = MsgStats::default();
            let mut total = 0u64;
            for &(s, t) in &pairs[..256] {
                total += dsq_query(
                    world.network(),
                    world.contact_tables(),
                    black_box(s),
                    t,
                    3,
                    &mut stats,
                    SimTime::ZERO,
                    &mut scratch,
                )
                .total_messages();
            }
            black_box(total)
        })
    });
    group.bench_function("rewalk", |b| {
        b.iter(|| {
            let mut stats = MsgStats::default();
            let mut total = 0u64;
            for &(s, t) in &pairs[..256] {
                total += dsq_query_rewalk(
                    world.network(),
                    world.contact_tables(),
                    black_box(s),
                    t,
                    3,
                    &mut stats,
                    SimTime::ZERO,
                )
                .total_messages();
            }
            black_box(total)
        })
    });
    // One hinted batch: 256 queries against `store`, deposits applied
    // after each query when `live` (the `CardWorld::query` semantics) or
    // discarded when frozen (the sharded-sweep read phase).
    let hinted_batch = |store: &mut HintStore, live: bool, scratch: &mut QueryScratch| {
        let mut hstats = HintStats::default();
        let mut deposits = Vec::new();
        let mut stats = MsgStats::default();
        let mut total = 0u64;
        for &(s, t) in &pairs[..256] {
            deposits.clear();
            let out = {
                let mut ctx = HintContext {
                    store: &*store,
                    stats: &mut hstats,
                    deposits: &mut deposits,
                };
                dsq_query_hinted(
                    world.network(),
                    world.contact_tables(),
                    &mut ctx,
                    black_box(s),
                    t,
                    3,
                    &mut stats,
                    SimTime::ZERO,
                    scratch,
                )
            };
            if live {
                for d in &deposits {
                    store.deposit(d.holder, d.key, d.next_hop, d.depth);
                }
            }
            total += out.total_messages();
        }
        total
    };
    group.bench_function("hinted_cold", |b| {
        let mut scratch = QueryScratch::new();
        b.iter(|| {
            let mut store = HintStore::new(n, 4, 32);
            black_box(hinted_batch(&mut store, true, &mut scratch))
        })
    });
    group.bench_function("hinted_warm", |b| {
        let mut scratch = QueryScratch::new();
        let mut store = HintStore::new(n, 4, 32);
        hinted_batch(&mut store, true, &mut scratch); // warm pass
        b.iter(|| black_box(hinted_batch(&mut store, false, &mut scratch)))
    });
    group.finish();

    let mut group = c.benchmark_group("query_sweep/n1000");
    let mut run_sweep = |label: &str, parallel: bool| {
        group.bench_function(label, |b| {
            // Queries leave the protocol state untouched; only stats
            // accumulate (into already-grown buckets), so the same world
            // serves every iteration allocation-free.
            let mut w = world.clone();
            b.iter(|| {
                let outcomes = if parallel {
                    w.query_all(black_box(&pairs))
                } else {
                    w.query_all_serial(black_box(&pairs))
                };
                black_box(outcomes.iter().filter(|o| o.found).count())
            })
        });
    };
    run_sweep("sharded", true);
    run_sweep("serial", false);
    group.bench_function("hinted", |b| {
        let mut w = world.clone();
        w.set_hints_enabled(true);
        w.query_all(&pairs); // warm pass: the steady state sweeps ride on
        b.iter(|| {
            let outcomes = w.query_all(black_box(&pairs));
            black_box(outcomes.iter().filter(|o| o.found).count())
        })
    });
    group.finish();
}

/// The cross-shard message plane in isolation: the `exchange` lane drain
/// (src-outer/dst-inner merge into `(dst, src, seq)` delivery order) and
/// the full route → exchange → drain round trip, at the shard/message
/// shape the sharded hint sweeps produce (16 shards, 8192 messages of a
/// deposit-sized payload, scatter-routed), plus the one-shard degenerate
/// case where every message stays local. Buffers are plane-owned and
/// reused, so steady-state iterations are allocation-free — these ids
/// guard exactly the per-sweep overhead `CardWorld` pays to make
/// cross-shard writes explicit.
fn bench_message_plane(c: &mut Criterion) {
    use sim_core::plane::MessagePlane;
    type Payload = (u32, u32, u16); // holder, next-hop, depth — deposit-shaped
    let msgs = 8192usize;
    let splitter = SeedSplitter::new(41);
    let mut group = c.benchmark_group("message_plane");
    for shards in [1usize, 16] {
        let mut route_rng = splitter.stream("plane-routes", shards as u64);
        let routes: Vec<(usize, usize)> = (0..msgs)
            .map(|_| (route_rng.index(shards), route_rng.index(shards)))
            .collect();
        group.bench_function(format!("exchange/s{shards}_m{msgs}"), |b| {
            let mut plane: MessagePlane<Payload> = MessagePlane::new(shards);
            b.iter(|| {
                let (outboxes, _) = plane.split_mut();
                for (i, &(src, dst)) in routes.iter().enumerate() {
                    outboxes[src].send(dst, (i as u32, i as u32 ^ 7, 2));
                }
                black_box(plane.exchange())
            })
        });
        group.bench_function(format!("round_trip/s{shards}_m{msgs}"), |b| {
            let mut plane: MessagePlane<Payload> = MessagePlane::new(shards);
            b.iter(|| {
                let (outboxes, _) = plane.split_mut();
                for (i, &(src, dst)) in routes.iter().enumerate() {
                    outboxes[src].send(dst, (i as u32, i as u32 ^ 7, 2));
                }
                plane.exchange();
                let mut sum = 0u64;
                for mb in plane.mailboxes_mut() {
                    for (src, (a, _, _)) in mb.drain() {
                        sum += src as u64 + a as u64;
                    }
                }
                black_box(sum)
            })
        });
    }
    group.finish();

    // The sharded validation round at N = 10000: path polling + absorb +
    // throttled re-select over shard-resident state, with validation
    // traffic metered against shard spans into the plane's stats. Each
    // iteration clones a selected world (mutating sweep — same pattern as
    // `validation_round/n1000`), so the absolute number includes the
    // clone; the id exists to track the full-protocol 10⁴ round the
    // `repro scale-raw` tier scales up from.
    let n = 10_000usize;
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_seed(29);
    let net = Network::from_scenario(&scaled_scenario(n), 2, 29);
    let mut group = c.benchmark_group(format!("validation_round/n{n}"));
    group.bench_function("plane", |b| {
        let mut seeded = card_core::CardWorld::from_network(net.clone(), cfg);
        seeded.select_all_contacts();
        b.iter(|| {
            let mut w = seeded.clone();
            w.validation_round();
            black_box((
                w.maintenance_totals().validated,
                w.plane_stats().metered_crossings,
            ))
        })
    });
    // The same round under an armed hostile plan (10% churn, a half-field
    // partition window, 1% probe loss): prices the fault plane's per-round
    // overhead — event application, link vetoes, tombstone/retry
    // bookkeeping — over the calm `plane` id. One warm-up round advances
    // the runtime past round 0, so every measured round applies real
    // crash/rejoin events from the plan.
    group.bench_function("faulted", |b| {
        use sim_core::faults::{FaultConfig, FaultPlan, PartitionWindow};
        let mut seeded = card_core::CardWorld::from_network(net.clone(), cfg);
        seeded.select_all_contacts();
        seeded.enable_faults(FaultPlan::generate(
            &FaultConfig {
                churn_rate: 0.1,
                rejoin_after: 2,
                partition: Some(PartitionWindow {
                    start_round: 1,
                    end_round: 3,
                    fraction: 0.5,
                }),
                drop_rate: 0.01,
                delay_rate: 0.01,
                rounds: 4,
            },
            n,
            29,
        ));
        seeded.validation_round();
        b.iter(|| {
            let mut w = seeded.clone();
            w.validation_round();
            black_box((w.maintenance_totals().validated, w.fault_report().crashes))
        })
    });
    group.finish();
}

/// The query-retry path at N = 1000 (depth 3): a 256-query batch through
/// the faulted `CardWorld::query` dispatch plus one validation round that
/// drains the due retries. *calm* arms a no-op plan — every query walks
/// the faulted code path (down-mask filter, verdict lookups) but nothing
/// fails, pricing the fault plane's fixed overhead on healthy traffic.
/// *churn* arms a 20% crash plan applied over two warm-up rounds, so a
/// slice of the batch fails fast on down endpoints, enters the capped
/// backoff queue and is re-run by the round's drain.
fn bench_query_retry(c: &mut Criterion) {
    use sim_core::faults::{FaultConfig, FaultPlan};
    let n = 1000usize;
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(3)
        .with_seed(29);
    let net = Network::from_scenario(&scaled_scenario(n), 2, 29);
    let mut rng = SeedSplitter::new(31).stream("bench-query-retry", 0);
    let pairs: Vec<(NodeId, NodeId)> = (0..256)
        .map(|_| (NodeId::from(rng.index(n)), NodeId::from(rng.index(n))))
        .collect();
    let churny = FaultPlan::generate(
        &FaultConfig {
            churn_rate: 0.2,
            rejoin_after: 2,
            partition: None,
            drop_rate: 0.05,
            delay_rate: 0.05,
            rounds: 4,
        },
        n,
        29,
    );
    for (label, plan) in [("calm", FaultPlan::calm(29)), ("churn", churny)] {
        c.bench_function(format!("query_retry/n{n}/{label}"), |b| {
            let mut seeded = card_core::CardWorld::from_network(net.clone(), cfg);
            seeded.select_all_contacts();
            seeded.enable_faults(plan.clone());
            seeded.validation_round();
            seeded.validation_round();
            b.iter(|| {
                let mut w = seeded.clone();
                let mut hits = 0u64;
                for &(s, t) in &pairs {
                    hits += w.query(s, t).found as u64;
                }
                w.validation_round();
                black_box((hits, w.pending_query_retries()))
            })
        });
    }
}

/// The event-driven drive loop vs the tick-synchronous reference at
/// N = 10000 (scenario-5 density, the populations of `repro scale-events`):
/// each iteration advances the same live world by one virtual second
/// through `card_core::EventDriver`. *dense* walks every node every tick
/// (the event loop degenerates to the tick loop — parity is the guard);
/// *sparse* is the 99.99%-dwell small-region population where the event
/// loop sleeps through quiescent windows and must sit several times under
/// its tick twin. Validation is pushed out past the measured horizon so
/// the ids price the mobility/event machinery, not the validation sweep.
fn bench_drive_loops(c: &mut Criterion) {
    use card_core::DriveMode;
    use experiments::scale_events::{partition, MotionProfile, REGION_NODES};
    let n = 10_000usize;
    let scenario = scaled_scenario(n);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(3)
        .with_seed(29);
    for (loop_name, mode) in [
        ("tick_loop", DriveMode::Tick),
        ("event_loop", DriveMode::Event),
    ] {
        for (label, motion) in [
            ("dense", MotionProfile::Dense),
            ("sparse", MotionProfile::Sparse),
        ] {
            c.bench_function(format!("{loop_name}/n{n}/{label}"), |b| {
                let mut config = cfg;
                config.validation_period = SimDuration::from_secs(1_000_000);
                let mut world = card_core::CardWorld::build(&scaled_scenario(n), config);
                world.select_all_contacts();
                let mut model = partition(&scenario, motion, REGION_NODES, 29);
                let mut driver = card_core::EventDriver::new(&world, &model, mode, Vec::new());
                b.iter(|| {
                    driver.drive(&mut world, &mut model, SimDuration::from_secs(1));
                    black_box(driver.report().events_processed)
                })
            });
        }
    }
}

criterion_group! {
    name = micro;
    config = bench::config();
    targets =
        bench_event_queue,
        bench_topology_build,
        bench_neighborhood_tables,
        bench_khop_bfs,
        bench_mobility_tick,
        bench_adjacency_rebuild,
        bench_grid_kernel_scan,
        bench_adjacency_patch,
        bench_grid_update_reported,
        bench_grid_rebucket,
        bench_topology_refresh,
        bench_topology_refresh_dwell,
        bench_bitset_union,
        bench_csq_walk,
        bench_protocol_sweeps,
        bench_query_engine,
        bench_message_plane,
        bench_query_retry,
        bench_drive_loops,
}
criterion_main!(micro);

//! One benchmark per table/figure of the paper's evaluation (§IV).
//!
//! Each benchmark regenerates its table/figure end-to-end on the module's
//! `quick()` configuration (same shapes, reduced sizes), so `cargo bench`
//! both exercises every experiment path and tracks the runtime cost of the
//! reproduction itself. The paper-sized runs live in the `repro` binary
//! (`cargo run --release -p experiments --bin repro -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_table1(c: &mut Criterion) {
    configure(c).bench_function("table1_topology_metrics", |b| {
        b.iter(|| black_box(experiments::table1::run(black_box(7))))
    });
}

fn bench_fig03_04(c: &mut Criterion) {
    let params = experiments::fig03_04::Params::quick();
    c.bench_function("fig03_04_pm_vs_em", |b| {
        b.iter(|| black_box(experiments::fig03_04::run(black_box(&params))))
    });
}

fn bench_fig05(c: &mut Criterion) {
    let params = experiments::fig05::Params::quick();
    c.bench_function("fig05_vary_radius", |b| {
        b.iter(|| black_box(experiments::fig05::run(black_box(&params))))
    });
}

fn bench_fig06(c: &mut Criterion) {
    let params = experiments::fig06::Params::quick();
    c.bench_function("fig06_vary_max_contact_distance", |b| {
        b.iter(|| black_box(experiments::fig06::run(black_box(&params))))
    });
}

fn bench_fig07(c: &mut Criterion) {
    let params = experiments::fig07::Params::quick();
    c.bench_function("fig07_vary_noc", |b| {
        b.iter(|| black_box(experiments::fig07::run(black_box(&params))))
    });
}

fn bench_fig08(c: &mut Criterion) {
    let params = experiments::fig08::Params::quick();
    c.bench_function("fig08_vary_depth", |b| {
        b.iter(|| black_box(experiments::fig08::run(black_box(&params))))
    });
}

fn bench_fig09(c: &mut Criterion) {
    let params = experiments::fig09::Params::quick();
    c.bench_function("fig09_network_sizes", |b| {
        b.iter(|| black_box(experiments::fig09::run(black_box(&params))))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let params = experiments::fig10::Params::quick();
    c.bench_function("fig10_overhead_by_noc", |b| {
        b.iter(|| black_box(experiments::fig10::run(black_box(&params))))
    });
}

fn bench_fig11_12(c: &mut Criterion) {
    let params = experiments::fig11_12::Params::quick();
    c.bench_function("fig11_12_overhead_by_r", |b| {
        b.iter(|| black_box(experiments::fig11_12::run(black_box(&params))))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let params = experiments::fig13::Params::quick();
    c.bench_function("fig13_overhead_over_time", |b| {
        b.iter(|| black_box(experiments::fig13::run(black_box(&params))))
    });
}

fn bench_fig14(c: &mut Criterion) {
    let params = experiments::fig14::Params::quick();
    c.bench_function("fig14_tradeoff", |b| {
        b.iter(|| black_box(experiments::fig14::run(black_box(&params))))
    });
}

fn bench_fig15(c: &mut Criterion) {
    let params = experiments::fig15::Params::quick();
    c.bench_function("fig15_scheme_comparison", |b| {
        b.iter(|| black_box(experiments::fig15::run(black_box(&params))))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets =
        bench_table1,
        bench_fig03_04,
        bench_fig05,
        bench_fig06,
        bench_fig07,
        bench_fig08,
        bench_fig09,
        bench_fig10,
        bench_fig11_12,
        bench_fig13,
        bench_fig14,
        bench_fig15,
}
criterion_main!(figures);

//! Ablation benches for the reproduction's own design choices (local
//! recovery, CSQ step budget, incremental refresh — see `ARCHITECTURE.md`).
//!
//! Each ablation measures the *work* (wall time of the full procedure) of a
//! design variant on identical topologies; the companion message-count and
//! quality numbers are printed once per bench so the trade-off is visible
//! in the bench log:
//!
//! * PM equation (1) vs (2) vs EM — selection quality and traffic;
//! * local recovery on vs off — maintenance under mobility;
//! * CARD depth-escalated queries vs expanding-ring search;
//! * bordercast query-detection levels (none / QD1 / QD1+QD2).

use card_core::{CardConfig, CardWorld, SelectionMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use manet_routing::expanding_ring::{doubling_schedule, expanding_ring_search};
use manet_routing::network::Network;
use manet_routing::zrp::{bordercast_search, BordercastConfig, QueryDetection};
use mobility::waypoint::RandomWaypoint;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::{SimDuration, SimTime};
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

fn scenario() -> Scenario {
    Scenario::new(200, 500.0, 500.0, 50.0)
}

fn base_cfg() -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(10)
        .with_target_contacts(5)
        .with_seed(17)
}

fn bench_pm_equations(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for method in [
            SelectionMethod::ProbabilisticEq1,
            SelectionMethod::ProbabilisticEq2,
            SelectionMethod::Edge,
        ] {
            let mut w = CardWorld::build(&scenario(), base_cfg().with_method(method));
            w.select_all_contacts();
            eprintln!(
                "[ablation_pm_equations] {:8}: reach {:5.1}%  contacts/node {:.2}  sel msgs/node {:.1}",
                method.label(),
                w.reachability_summary(1).mean_pct,
                w.mean_contacts(),
                w.stats().total_where(MsgKind::is_selection) as f64 / 200.0,
            );
        }
    });
    let mut group = c.benchmark_group("ablation_pm_equations");
    for method in [
        SelectionMethod::ProbabilisticEq1,
        SelectionMethod::ProbabilisticEq2,
        SelectionMethod::Edge,
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| {
                let mut w = CardWorld::build(&scenario(), base_cfg().with_method(method));
                w.select_all_contacts();
                black_box(w.total_contacts())
            })
        });
    }
    group.finish();
}

fn bench_local_recovery(c: &mut Criterion) {
    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        for recovery in [true, false] {
            let mut cfg = base_cfg();
            cfg.local_recovery = recovery;
            let mut w = CardWorld::build(&scenario(), cfg);
            w.select_all_contacts();
            let mut model = RandomWaypoint::new(
                200,
                scenario().field(),
                2.0,
                8.0,
                0.0,
                SeedSplitter::new(cfg.seed).stream("abl-rec", 0),
            );
            w.run_mobile(&mut model, SimDuration::from_secs(6));
            let t = w.maintenance_totals();
            eprintln!(
                "[ablation_local_recovery] recovery={:5}: lost {:4}  recovered {:4}  contacts kept {:4}",
                recovery, t.lost, t.recovered, w.total_contacts(),
            );
        }
    });
    let mut group = c.benchmark_group("ablation_local_recovery");
    for (label, recovery) in [("with_recovery", true), ("without_recovery", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = base_cfg();
                cfg.local_recovery = recovery;
                let mut w = CardWorld::build(&scenario(), cfg);
                w.select_all_contacts();
                let mut model = RandomWaypoint::new(
                    200,
                    scenario().field(),
                    2.0,
                    8.0,
                    0.0,
                    SeedSplitter::new(cfg.seed).stream("abl-rec", 0),
                );
                w.run_mobile(&mut model, SimDuration::from_secs(3));
                black_box(w.total_contacts())
            })
        });
    }
    group.finish();
}

fn query_pairs(net: &Network, count: usize) -> Vec<(NodeId, NodeId)> {
    let bfs = net_topology::bfs::full_bfs(net.adj(), NodeId::new(0));
    let pool: Vec<NodeId> = bfs.visited().to_vec();
    let mut rng = SeedSplitter::new(23).stream("abl-pairs", 0);
    (0..count)
        .map(|_| loop {
            let s = *rng.choose(&pool).unwrap();
            let t = *rng.choose(&pool).unwrap();
            if s != t {
                break (s, t);
            }
        })
        .collect()
}

fn bench_card_vs_expanding_ring(c: &mut Criterion) {
    let cfg = base_cfg().with_depth(3);
    let mut world = CardWorld::build(&scenario(), cfg);
    world.select_all_contacts();
    let pairs = query_pairs(world.network(), 15);
    let schedule = doubling_schedule(20);

    static REPORT: Once = Once::new();
    REPORT.call_once(|| {
        let mut card_msgs = 0u64;
        let mut ers_msgs = 0u64;
        let mut world2 = CardWorld::build(&scenario(), cfg);
        world2.select_all_contacts();
        for &(s, t) in &pairs {
            card_msgs += world2.query(s, t).total_messages();
            let mut st = MsgStats::default();
            ers_msgs += expanding_ring_search(
                world2.network().adj(),
                s,
                t,
                &schedule,
                &mut st,
                SimTime::ZERO,
            )
            .total_messages();
        }
        eprintln!(
            "[ablation_expanding_ring] CARD {} msgs vs expanding-ring {} msgs over {} queries",
            card_msgs,
            ers_msgs,
            pairs.len(),
        );
    });

    let mut group = c.benchmark_group("ablation_query_mechanism");
    group.bench_function("card_dsq_d3", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &(s, t) in &pairs {
                total += world.query(s, t).total_messages();
            }
            black_box(total)
        })
    });
    group.bench_function("expanding_ring", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &(s, t) in &pairs {
                let mut st = MsgStats::default();
                total += expanding_ring_search(
                    world.network().adj(),
                    s,
                    t,
                    &schedule,
                    &mut st,
                    SimTime::ZERO,
                )
                .total_messages();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_query_detection(c: &mut Criterion) {
    let net = Network::from_scenario(&scenario(), 2, 17);
    let pairs = query_pairs(&net, 15);
    let mut group = c.benchmark_group("ablation_query_detection");
    for (label, qd) in [
        ("none", QueryDetection::None),
        ("qd1", QueryDetection::Qd1),
        ("qd1_qd2", QueryDetection::Qd1Qd2),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut total = 0u64;
                for &(s, t) in &pairs {
                    let mut st = MsgStats::default();
                    total += bordercast_search(
                        net.adj(),
                        net.tables(),
                        s,
                        t,
                        &BordercastConfig {
                            qd,
                            max_bordercasts: 100_000,
                        },
                        &mut st,
                        SimTime::ZERO,
                    )
                    .total_messages();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets =
        bench_pm_equations,
        bench_local_recovery,
        bench_card_vs_expanding_ring,
        bench_query_detection,
}
criterion_main!(ablations);

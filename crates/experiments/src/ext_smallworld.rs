//! Extension experiment: contacts create a small world.
//!
//! §I: "Contacts act as short cuts that attempt to transform the network
//! into a small world by reducing the degrees of separation", grounded in
//! Watts–Strogatz \[10\]\[11\] and Helmy's small-world wireless study
//! \[13\].
//! The paper asserts this qualitatively; this experiment quantifies it:
//! measure the unit-disk graph's clustering coefficient and characteristic
//! path length, then overlay each node's contact links as shortcut edges
//! and re-measure. The small-world signature is a large path-length drop at
//! (nearly) unchanged clustering.

use crate::output::markdown_table;
use card_core::{CardConfig, CardWorld};
use net_topology::node::NodeId;
use net_topology::scenario::{Scenario, SCENARIO_5};
use net_topology::smallworld::{with_shortcuts, SmallWorldMetrics};

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family.
    pub scenario: Scenario,
    /// CARD parameters used to select the contact overlay.
    pub radius: u16,
    /// Maximum contact distance.
    pub max_contact_distance: u16,
    /// NoC values to sweep (each yields one overlay row).
    pub noc_values: Vec<usize>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 16,
            noc_values: vec![0, 2, 4, 6, 8, 10],
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 9,
            noc_values: vec![0, 2, 4],
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// One overlay measurement.
#[derive(Clone, Debug)]
pub struct OverlayRow {
    /// NoC used for the overlay (0 = bare unit-disk graph).
    pub noc: usize,
    /// Contact links added.
    pub shortcut_links: usize,
    /// Metrics of the (augmented) graph.
    pub metrics: SmallWorldMetrics,
}

/// Run the sweep: measure the base graph, then each contact overlay.
pub fn run(params: &Params) -> Vec<OverlayRow> {
    params
        .noc_values
        .iter()
        .map(|&noc| {
            let cfg = CardConfig::default()
                .with_seed(params.seed)
                .with_radius(params.radius)
                .with_max_contact_distance(params.max_contact_distance)
                .with_target_contacts(noc);
            let mut world = CardWorld::build(&params.scenario, cfg);
            if noc > 0 {
                world.select_all_contacts();
            }
            let shortcuts: Vec<(NodeId, NodeId)> = NodeId::all(world.network().node_count())
                .flat_map(|s| {
                    world
                        .contact_table(s)
                        .ids()
                        .map(move |c| (s, c))
                        .collect::<Vec<_>>()
                })
                .collect();
            let augmented = with_shortcuts(world.network().adj(), &shortcuts);
            OverlayRow {
                noc,
                shortcut_links: shortcuts.len(),
                metrics: SmallWorldMetrics::compute(&augmented),
            }
        })
        .collect()
}

/// Render as Markdown.
pub fn render(params: &Params, rows: &[OverlayRow]) -> String {
    let headers = [
        "NoC",
        "Contact shortcuts",
        "Clustering",
        "Char. path length",
        "Connected pairs",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.noc.to_string(),
                r.shortcut_links.to_string(),
                format!("{:.3}", r.metrics.clustering),
                format!("{:.2}", r.metrics.path_length),
                format!("{:.0}%", 100.0 * r.metrics.connected_pair_fraction),
            ]
        })
        .collect();
    format!(
        "### Extension — small-world effect of contacts ({}, R={}, r={})\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        markdown_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contacts_shrink_path_length_without_killing_clustering() {
        let params = Params::quick();
        let rows = run(&params);
        let base = &rows[0];
        let most = rows.last().unwrap();
        assert_eq!(base.noc, 0);
        assert_eq!(base.shortcut_links, 0);
        assert!(most.shortcut_links > 0);
        assert!(
            most.metrics.path_length < base.metrics.path_length * 0.9,
            "contacts must shrink the characteristic path length \
             ({:.2} -> {:.2})",
            base.metrics.path_length,
            most.metrics.path_length
        );
        // Watts–Strogatz small-world criterion: clustering stays far above
        // the random-graph level C_rand ≈ <k>/n even after the overlay
        // dilutes it with (non-triangle-forming) long-range shortcuts.
        let n = params.scenario.nodes as f64;
        let approx_degree = 8.0; // unit-disk degree at these densities
        let c_random = approx_degree / n;
        assert!(
            most.metrics.clustering > 5.0 * c_random,
            "clustering ({:.3}) must remain well above random-graph level ({:.3})",
            most.metrics.clustering,
            c_random
        );
    }

    #[test]
    fn path_length_decreases_monotonically_with_noc() {
        let rows = run(&Params::quick());
        for w in rows.windows(2) {
            assert!(
                w[1].metrics.path_length <= w[0].metrics.path_length + 0.05,
                "more contacts should not lengthen paths: {:?} -> {:?}",
                w[0].metrics.path_length,
                w[1].metrics.path_length
            );
        }
    }

    #[test]
    fn render_shape() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        assert!(text.contains("small-world"));
        assert!(text.contains("Char. path length"));
    }
}

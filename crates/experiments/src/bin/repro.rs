//! `repro` — regenerate every table and figure of the CARD paper.
//!
//! ```text
//! repro table1 | fig3 | fig4 | fig5 | … | fig15 | scale | all
//!       [--quick] [--seed N] [--scale] [--nodes N[,N…]]
//! ```
//!
//! `fig3`/`fig4` and `fig11`/`fig12` share runs and print together.
//! `scale` (equivalently the `--scale` flag) runs the N = 10⁴–10⁵
//! substrate scale family; `scale-raw` the N = 10⁶ raw-speed tier
//! (kernel build + mobility/refresh loop, then the full protocol on
//! shard-resident state: selection, validation rounds and hinted query
//! sweeps through the cross-shard message plane, with per-shard memory
//! and plane-traffic columns); `scale-hostile` the fault-injection
//! degradation grid (churn × partition × message loss, liveness asserted
//! in-run). `--nodes` overrides any scale family's node counts from the
//! command line so new sizes need no recompile. Scale tiers exit
//! non-zero when an in-run fidelity/parity/liveness assertion fails.
//! Output is Markdown (tables matching the paper's figures); see
//! `docs/REPRO.md` for the experiment catalogue and conventions.

use experiments::*;

struct Options {
    quick: bool,
    seed: u64,
    /// `--nodes` override for the scale family (`None` = module defaults).
    nodes: Option<Vec<usize>>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut opts = Options {
        quick: false,
        seed: DEFAULT_SEED,
        nodes: None,
    };

    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--scale" => which.push("scale".to_string()),
            "--nodes" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--nodes needs a value (e.g. 10000 or 10000,50000)"));
                let parsed: Result<Vec<usize>, _> =
                    v.split(',').map(|s| s.trim().parse::<usize>()).collect();
                match parsed {
                    Ok(list) if !list.is_empty() && list.iter().all(|&n| n > 0) => {
                        opts.nodes = Some(list);
                    }
                    _ => usage("--nodes needs positive integers (comma-separated)"),
                }
            }
            "-h" | "--help" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other => which.push(other.to_string()),
        }
    }
    // `--nodes` without an experiment implies the scale family; with a
    // non-scale experiment it would be silently ignored, so reject it.
    if which.is_empty() && opts.nodes.is_some() {
        which.push("scale".to_string());
    }
    if opts.nodes.is_some()
        && !which.iter().any(|w| {
            w == "scale" || w == "scale-raw" || w == "scale-events" || w == "scale-hostile"
        })
    {
        usage("--nodes only applies to the scale / scale-raw / scale-events / scale-hostile experiments");
    }
    if which.is_empty() {
        usage("choose an experiment or `all`");
    }

    for name in which {
        match name.as_str() {
            "table1" => table1_cmd(&opts),
            "fig3" | "fig4" | "fig3_4" => fig3_4_cmd(&opts),
            "fig5" => fig5_cmd(&opts),
            "fig6" => fig6_cmd(&opts),
            "fig7" => fig7_cmd(&opts),
            "fig8" => fig8_cmd(&opts),
            "fig9" => fig9_cmd(&opts),
            "fig10" => fig10_cmd(&opts),
            "fig11" | "fig12" | "fig11_12" => fig11_12_cmd(&opts),
            "fig13" => fig13_cmd(&opts),
            "fig14" => fig14_cmd(&opts),
            "fig15" => fig15_cmd(&opts),
            "smallworld" => smallworld_cmd(&opts),
            "resources" => resources_cmd(&opts),
            "scale" => gate(name.as_str(), || scale_cmd(&opts)),
            "scale-raw" => gate(name.as_str(), || scale_raw_cmd(&opts)),
            "scale-events" => gate(name.as_str(), || scale_events_cmd(&opts)),
            "scale-hostile" => gate(name.as_str(), || scale_hostile_cmd(&opts)),
            "all" => {
                table1_cmd(&opts);
                fig3_4_cmd(&opts);
                fig5_cmd(&opts);
                fig6_cmd(&opts);
                fig7_cmd(&opts);
                fig8_cmd(&opts);
                fig9_cmd(&opts);
                fig10_cmd(&opts);
                fig11_12_cmd(&opts);
                fig13_cmd(&opts);
                fig14_cmd(&opts);
                fig15_cmd(&opts);
                smallworld_cmd(&opts);
                resources_cmd(&opts);
            }
            other => usage(&format!("unknown experiment {other}")),
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro <table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|smallworld|resources|scale|scale-raw|scale-events|scale-hostile|all> [--quick] [--seed N] [--scale] [--nodes N[,N...]]\n\n\
         scale runs are excluded from `all` (minutes at N=10^5); invoke them\n\
         explicitly via `repro scale`, `repro --scale`, or `repro --nodes N`.\n\
         `repro scale-raw` runs the N=10^6 raw-speed tier (substrate loop\n\
         plus the full protocol on shard-resident state).\n\
         `repro scale-events` races the event-driven drive against the tick\n\
         reference at N=10^5 (fidelity asserted in-run).\n\
         `repro scale-hostile` measures degradation under churn, partition\n\
         windows and message loss at N=10^5 (liveness asserted in-run).\n\
         Scale tiers exit non-zero when an in-run fidelity, parity or\n\
         liveness assertion fails."
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Run a scale-tier command and turn any in-run fidelity/parity/liveness
/// assertion failure into a clean non-zero exit, so CI gates on the run.
fn gate(name: &str, cmd: impl FnOnce() + std::panic::UnwindSafe) {
    if std::panic::catch_unwind(cmd).is_err() {
        eprintln!("[repro] {name}: an in-run assertion failed");
        std::process::exit(1);
    }
}

fn stamp(name: &str) {
    eprintln!("[repro] running {name} …");
}

fn table1_cmd(opts: &Options) {
    stamp("table1");
    let rows = table1::run(opts.seed);
    println!("{}", table1::render(&rows));
}

fn fig3_4_cmd(opts: &Options) {
    stamp("fig3/fig4");
    let mut p = if opts.quick {
        fig03_04::Params::quick()
    } else {
        fig03_04::Params::default()
    };
    p.seed = opts.seed;
    let curves = fig03_04::run(&p);
    println!("{}", fig03_04::render(&p, &curves));
}

fn fig5_cmd(opts: &Options) {
    stamp("fig5");
    let mut p = if opts.quick {
        fig05::Params::quick()
    } else {
        fig05::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig05::run(&p);
    println!("{}", fig05::render(&p, &sweep));
}

fn fig6_cmd(opts: &Options) {
    stamp("fig6");
    let mut p = if opts.quick {
        fig06::Params::quick()
    } else {
        fig06::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig06::run(&p);
    println!("{}", fig06::render(&p, &sweep));
}

fn fig7_cmd(opts: &Options) {
    stamp("fig7");
    let mut p = if opts.quick {
        fig07::Params::quick()
    } else {
        fig07::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig07::run(&p);
    println!("{}", fig07::render(&p, &sweep));
}

fn fig8_cmd(opts: &Options) {
    stamp("fig8");
    let mut p = if opts.quick {
        fig08::Params::quick()
    } else {
        fig08::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig08::run(&p);
    println!("{}", fig08::render(&p, &sweep));
}

fn fig9_cmd(opts: &Options) {
    stamp("fig9");
    let mut p = if opts.quick {
        fig09::Params::quick()
    } else {
        fig09::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig09::run(&p);
    println!("{}", fig09::render(&sweep));
}

fn fig10_cmd(opts: &Options) {
    stamp("fig10");
    let mut p = if opts.quick {
        fig10::Params::quick()
    } else {
        fig10::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig10::run(&p);
    println!("{}", fig10::render(&p, &sweep));
}

fn fig11_12_cmd(opts: &Options) {
    stamp("fig11/fig12");
    let mut p = if opts.quick {
        fig11_12::Params::quick()
    } else {
        fig11_12::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig11_12::run(&p);
    println!("{}", fig11_12::render(&p, &sweep));
}

fn fig13_cmd(opts: &Options) {
    stamp("fig13");
    let mut p = if opts.quick {
        fig13::Params::quick()
    } else {
        fig13::Params::default()
    };
    p.seed = opts.seed;
    let result = fig13::run(&p);
    println!("{}", fig13::render(&p, &result));
}

fn fig14_cmd(opts: &Options) {
    stamp("fig14");
    let mut p = if opts.quick {
        fig14::Params::quick()
    } else {
        fig14::Params::default()
    };
    p.seed = opts.seed;
    let sweep = fig14::run(&p);
    println!("{}", fig14::render(&p, &sweep));
}

fn fig15_cmd(opts: &Options) {
    stamp("fig15");
    let mut p = if opts.quick {
        fig15::Params::quick()
    } else {
        fig15::Params::default()
    };
    p.seed = opts.seed;
    let results = fig15::run(&p);
    println!("{}", fig15::render(&p, &results));
}

fn smallworld_cmd(opts: &Options) {
    stamp("smallworld");
    let mut p = if opts.quick {
        ext_smallworld::Params::quick()
    } else {
        ext_smallworld::Params::default()
    };
    p.seed = opts.seed;
    let rows = ext_smallworld::run(&p);
    println!("{}", ext_smallworld::render(&p, &rows));
}

fn resources_cmd(opts: &Options) {
    stamp("resources");
    let mut p = if opts.quick {
        ext_resources::Params::quick()
    } else {
        ext_resources::Params::default()
    };
    p.seed = opts.seed;
    let rows = ext_resources::run(&p);
    println!("{}", ext_resources::render(&p, &rows));
}

fn scale_cmd(opts: &Options) {
    stamp("scale");
    let mut p = if opts.quick {
        scale::Params::quick()
    } else {
        scale::Params::default()
    };
    p.seed = opts.seed;
    if let Some(nodes) = &opts.nodes {
        p.nodes = nodes.clone();
    }
    let rows = scale::run(&p);
    println!("{}", scale::render(&p, &rows));
}

fn scale_raw_cmd(opts: &Options) {
    stamp("scale-raw");
    let mut p = if opts.quick {
        scale::RawParams::quick()
    } else {
        scale::RawParams::default()
    };
    p.seed = opts.seed;
    if let Some(nodes) = &opts.nodes {
        p.nodes = nodes.clone();
    }
    let rows = scale::run_raw(&p);
    println!("{}", scale::render_raw(&p, &rows));
}

fn scale_events_cmd(opts: &Options) {
    stamp("scale-events");
    let mut p = if opts.quick {
        scale_events::Params::quick()
    } else {
        scale_events::Params::default()
    };
    p.seed = opts.seed;
    if let Some(nodes) = &opts.nodes {
        p.nodes = nodes.clone();
    }
    let rows = scale_events::run(&p);
    println!("{}", scale_events::render(&p, &rows));
}

fn scale_hostile_cmd(opts: &Options) {
    stamp("scale-hostile");
    let mut p = if opts.quick {
        scale_hostile::Params::quick()
    } else {
        scale_hostile::Params::default()
    };
    p.seed = opts.seed;
    if let Some(nodes) = &opts.nodes {
        p.nodes = nodes.clone();
    }
    let report = scale_hostile::run(&p);
    println!("{}", scale_hostile::render(&p, &report));
    assert!(
        scale_hostile::passed(&report),
        "hostile tier failed its liveness invariants"
    );
}

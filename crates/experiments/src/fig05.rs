//! Fig 5 — effect of neighborhood radius R on the reachability distribution.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, r=16, NoC=10, D=1, R = 1…7.
//! Expected shape: the distribution shifts right as R grows (bigger
//! neighborhoods + still-viable contacts), then collapses back left at
//! R=7, where the 2R=14‥16 annulus is too thin to place contacts.

use crate::output::histogram_table;
use crate::runner::parallel_map;
use card_core::reachability::REACH_BUCKET_PCT;
use card_core::{CardConfig, CardWorld};
use net_topology::scenario::{Scenario, SCENARIO_5};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Maximum contact distance r (paper: 16).
    pub max_contact_distance: u16,
    /// NoC (paper: 10).
    pub target_contacts: usize,
    /// R sweep values (paper: 1–7).
    pub radius_values: Vec<u16>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            max_contact_distance: 16,
            target_contacts: 10,
            radius_values: (1..=7).collect(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            max_contact_distance: 8,
            target_contacts: 5,
            radius_values: vec![1, 2, 3],
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// One histogram per swept R.
#[derive(Clone, Debug)]
pub struct RadiusSweep {
    /// The swept R values.
    pub radius_values: Vec<u16>,
    /// 5%-bucket histogram counts per R.
    pub histograms: Vec<Vec<u64>>,
    /// Mean reachability per R.
    pub mean_pct: Vec<f64>,
    /// Mean contacts actually selected per R (shows the R=7 collapse).
    pub mean_contacts: Vec<f64>,
}

/// Run the R sweep.
pub fn run(params: &Params) -> RadiusSweep {
    let results = parallel_map(params.radius_values.clone(), |radius| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(radius)
            .with_max_contact_distance(params.max_contact_distance)
            .with_target_contacts(params.target_contacts);
        let mut world = CardWorld::build(&params.scenario, cfg);
        world.select_all_contacts();
        let summary = world.reachability_summary(1);
        (
            summary.histogram.counts().to_vec(),
            summary.mean_pct,
            world.mean_contacts(),
        )
    });
    RadiusSweep {
        radius_values: params.radius_values.clone(),
        histograms: results.iter().map(|r| r.0.clone()).collect(),
        mean_pct: results.iter().map(|r| r.1).collect(),
        mean_contacts: results.iter().map(|r| r.2).collect(),
    }
}

/// Render as Markdown (one histogram column per R, plus summary rows).
pub fn render(params: &Params, sweep: &RadiusSweep) -> String {
    let edges: Vec<f64> = (1..=20).map(|i| i as f64 * REACH_BUCKET_PCT).collect();
    let series: Vec<(String, Vec<u64>)> = sweep
        .radius_values
        .iter()
        .zip(&sweep.histograms)
        .map(|(radius, h)| (format!("R={radius}"), h.clone()))
        .collect();
    let mut out = format!(
        "### Fig 5 — reachability distribution vs R ({}, r={}, NoC={}, D=1)\n\n{}",
        params.scenario.label(),
        params.max_contact_distance,
        params.target_contacts,
        histogram_table(&edges, &series)
    );
    out.push_str("\nMean reachability %: ");
    for (radius, m) in sweep.radius_values.iter().zip(&sweep.mean_pct) {
        out.push_str(&format!("R={radius}: {m:.1}  "));
    }
    out.push_str("\nMean contacts: ");
    for (radius, c) in sweep.radius_values.iter().zip(&sweep.mean_contacts) {
        out.push_str(&format!("R={radius}: {c:.2}  "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_shifts_right_with_r() {
        let params = Params::quick();
        let sweep = run(&params);
        assert_eq!(sweep.histograms.len(), 3);
        // every histogram covers all nodes
        for h in &sweep.histograms {
            assert_eq!(h.iter().sum::<u64>(), params.scenario.nodes as u64);
        }
        // R=2 and R=3 both dominate R=1 in mean reachability (Fig 5 shape)
        assert!(
            sweep.mean_pct[1] > sweep.mean_pct[0],
            "R=2 ({:.1}%) should beat R=1 ({:.1}%)",
            sweep.mean_pct[1],
            sweep.mean_pct[0]
        );
    }

    #[test]
    fn annulus_collapse_reduces_contacts() {
        // When 2R approaches r the contact count collapses (the R=7 effect):
        // quick params: r=8, so R=3 (2R=6) has a thinner annulus than R=2.
        let sweep = run(&Params::quick());
        let c_r2 = sweep.mean_contacts[1];
        let c_r3 = sweep.mean_contacts[2];
        assert!(
            c_r3 < c_r2,
            "thin annulus must yield fewer contacts (R=3: {c_r3:.2} vs R=2: {c_r2:.2})"
        );
    }

    #[test]
    fn render_has_all_radius_columns() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        for r in &params.radius_values {
            assert!(text.contains(&format!("R={r}")));
        }
    }
}

//! Fig 9 — reachability distributions for three network sizes.
//!
//! Paper setup (legend): (N=250, 500×500, R=3, r=14, NoC=10),
//! (N=500, 710×710, R=5, r=17, NoC=12), (N=1000, 1000×1000, R=6, r=24,
//! NoC=15), all at 50 m range, D=1, with near-constant node density.
//! Expected shape: with per-size tuning of R/r/NoC, every size achieves a
//! distribution concentrated at high reachability — the paper's
//! configurability claim.

use crate::output::histogram_table;
use crate::runner::parallel_map;
use card_core::reachability::REACH_BUCKET_PCT;
use card_core::{CardConfig, CardWorld};
use net_topology::scenario::Scenario;

/// One sized configuration of the sweep.
#[derive(Clone, Debug)]
pub struct SizedConfig {
    /// Topology family.
    pub scenario: Scenario,
    /// Neighborhood radius R.
    pub radius: u16,
    /// Maximum contact distance r.
    pub max_contact_distance: u16,
    /// NoC.
    pub target_contacts: usize,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// The sized configurations (paper: three).
    pub configs: Vec<SizedConfig>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            configs: vec![
                SizedConfig {
                    scenario: Scenario::new(250, 500.0, 500.0, 50.0),
                    radius: 3,
                    max_contact_distance: 14,
                    target_contacts: 10,
                },
                SizedConfig {
                    scenario: Scenario::new(500, 710.0, 710.0, 50.0),
                    radius: 5,
                    max_contact_distance: 17,
                    target_contacts: 12,
                },
                SizedConfig {
                    scenario: Scenario::new(1000, 1000.0, 1000.0, 50.0),
                    radius: 6,
                    max_contact_distance: 24,
                    target_contacts: 15,
                },
            ],
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            configs: vec![
                SizedConfig {
                    scenario: Scenario::new(100, 320.0, 320.0, 50.0),
                    radius: 2,
                    max_contact_distance: 8,
                    target_contacts: 5,
                },
                SizedConfig {
                    scenario: Scenario::new(200, 450.0, 450.0, 50.0),
                    radius: 3,
                    max_contact_distance: 10,
                    target_contacts: 6,
                },
            ],
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Results per sized configuration.
#[derive(Clone, Debug)]
pub struct SizeSweep {
    /// Labels for each configuration.
    pub labels: Vec<String>,
    /// 5%-bucket histograms.
    pub histograms: Vec<Vec<u64>>,
    /// Mean reachability.
    pub mean_pct: Vec<f64>,
}

/// Run all sized configurations.
pub fn run(params: &Params) -> SizeSweep {
    let results = parallel_map(params.configs.clone(), |sc| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(sc.radius)
            .with_max_contact_distance(sc.max_contact_distance)
            .with_target_contacts(sc.target_contacts);
        let mut world = CardWorld::build(&sc.scenario, cfg);
        world.select_all_contacts();
        let summary = world.reachability_summary(1);
        (
            format!(
                "{} R={} r={} NoC={}",
                sc.scenario.label(),
                sc.radius,
                sc.max_contact_distance,
                sc.target_contacts
            ),
            summary.histogram.counts().to_vec(),
            summary.mean_pct,
        )
    });
    SizeSweep {
        labels: results.iter().map(|r| r.0.clone()).collect(),
        histograms: results.iter().map(|r| r.1.clone()).collect(),
        mean_pct: results.iter().map(|r| r.2).collect(),
    }
}

/// Render as Markdown.
pub fn render(sweep: &SizeSweep) -> String {
    let edges: Vec<f64> = (1..=20).map(|i| i as f64 * REACH_BUCKET_PCT).collect();
    let series: Vec<(String, Vec<u64>)> = sweep
        .labels
        .iter()
        .cloned()
        .zip(sweep.histograms.iter().cloned())
        .collect();
    let mut out = format!(
        "### Fig 9 — reachability for different network sizes (D=1)\n\n{}",
        histogram_table(&edges, &series)
    );
    out.push_str("\nMean reachability %: ");
    for (label, m) in sweep.labels.iter().zip(&sweep.mean_pct) {
        out.push_str(&format!("[{label}]: {m:.1}  "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sizes_achieve_substantial_reachability() {
        let params = Params::quick();
        let sweep = run(&params);
        assert_eq!(sweep.mean_pct.len(), params.configs.len());
        for (label, &m) in sweep.labels.iter().zip(&sweep.mean_pct) {
            assert!(
                m > 15.0,
                "config [{label}] should reach well beyond its neighborhood, got {m:.1}%"
            );
        }
    }

    #[test]
    fn histograms_sum_to_network_size() {
        let params = Params::quick();
        let sweep = run(&params);
        for (cfg, h) in params.configs.iter().zip(&sweep.histograms) {
            assert_eq!(h.iter().sum::<u64>(), cfg.scenario.nodes as u64);
        }
    }
}

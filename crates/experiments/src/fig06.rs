//! Fig 6 — effect of maximum contact distance r on reachability.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, R=3, NoC=10, D=1,
//! r = 2R, 2R+2, …, 2R+12. Expected shape: reachability grows with r (a
//! wider annulus fits more non-overlapping contacts), with diminishing
//! returns past r ≈ 2R+8; r = 2R yields essentially the bare neighborhood.

use crate::output::histogram_table;
use crate::runner::parallel_map;
use card_core::reachability::REACH_BUCKET_PCT;
use card_core::{CardConfig, CardWorld};
use net_topology::scenario::{Scenario, SCENARIO_5};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// NoC (paper: 10).
    pub target_contacts: usize,
    /// Offsets added to 2R to form the r sweep (paper: 0, 2, …, 12).
    pub r_offsets: Vec<u16>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            target_contacts: 10,
            r_offsets: (0..=6).map(|k| 2 * k).collect(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            target_contacts: 5,
            r_offsets: vec![0, 2, 4],
            seed: crate::DEFAULT_SEED,
        }
    }

    /// The absolute r values of the sweep.
    pub fn r_values(&self) -> Vec<u16> {
        self.r_offsets.iter().map(|o| 2 * self.radius + o).collect()
    }
}

/// Results of the r sweep.
#[derive(Clone, Debug)]
pub struct RSweep {
    /// Swept r values.
    pub r_values: Vec<u16>,
    /// 5%-bucket histograms per r.
    pub histograms: Vec<Vec<u64>>,
    /// Mean reachability per r.
    pub mean_pct: Vec<f64>,
    /// Mean contacts selected per r.
    pub mean_contacts: Vec<f64>,
}

/// Run the r sweep.
pub fn run(params: &Params) -> RSweep {
    let r_values = params.r_values();
    let results = parallel_map(r_values.clone(), |r| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(params.radius)
            .with_max_contact_distance(r)
            .with_target_contacts(params.target_contacts);
        let mut world = CardWorld::build(&params.scenario, cfg);
        world.select_all_contacts();
        let summary = world.reachability_summary(1);
        (
            summary.histogram.counts().to_vec(),
            summary.mean_pct,
            world.mean_contacts(),
        )
    });
    RSweep {
        r_values,
        histograms: results.iter().map(|r| r.0.clone()).collect(),
        mean_pct: results.iter().map(|r| r.1).collect(),
        mean_contacts: results.iter().map(|r| r.2).collect(),
    }
}

/// Render as Markdown.
pub fn render(params: &Params, sweep: &RSweep) -> String {
    let edges: Vec<f64> = (1..=20).map(|i| i as f64 * REACH_BUCKET_PCT).collect();
    let series: Vec<(String, Vec<u64>)> = sweep
        .r_values
        .iter()
        .zip(&sweep.histograms)
        .map(|(r, h)| (format!("r={r}"), h.clone()))
        .collect();
    let mut out = format!(
        "### Fig 6 — reachability distribution vs r ({}, R={}, NoC={}, D=1)\n\n{}",
        params.scenario.label(),
        params.radius,
        params.target_contacts,
        histogram_table(&edges, &series)
    );
    out.push_str("\nMean reachability %: ");
    for (r, m) in sweep.r_values.iter().zip(&sweep.mean_pct) {
        out.push_str(&format!("r={r}: {m:.1}  "));
    }
    out.push_str("\nMean contacts: ");
    for (r, c) in sweep.r_values.iter().zip(&sweep.mean_contacts) {
        out.push_str(&format!("r={r}: {c:.2}  "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_grows_with_r() {
        let params = Params::quick();
        let sweep = run(&params);
        // r = 2R: (almost) no contacts, reachability ≈ neighborhood only
        assert!(
            sweep.mean_contacts[0] < 0.25,
            "r=2R should yield ~no contacts, got {:.2}",
            sweep.mean_contacts[0]
        );
        // wider annulus ⇒ more contacts and more reachability
        let last = sweep.mean_contacts.len() - 1;
        assert!(sweep.mean_contacts[last] > sweep.mean_contacts[0]);
        assert!(
            sweep.mean_pct[last] > sweep.mean_pct[0] + 3.0,
            "r=2R+4 ({:.1}%) must clearly beat r=2R ({:.1}%)",
            sweep.mean_pct[last],
            sweep.mean_pct[0]
        );
    }

    #[test]
    fn r_values_derived_from_offsets() {
        let params = Params::default();
        assert_eq!(params.r_values(), vec![6, 8, 10, 12, 14, 16, 18]);
    }

    #[test]
    fn histograms_cover_all_nodes() {
        let params = Params::quick();
        let sweep = run(&params);
        for h in &sweep.histograms {
            assert_eq!(h.iter().sum::<u64>(), params.scenario.nodes as u64);
        }
    }
}

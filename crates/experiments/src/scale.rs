//! Scale scenarios — Table-1 densities pushed to N = 10⁴–10⁵.
//!
//! The paper's pitch is resource discovery in *large-scale* MANets, but its
//! own evaluation stops at N = 1000 (Table 1). This family keeps Table 1's
//! scenario-5 density (500 nodes in a 710 m square, 50 m radio range) and
//! scales the field so N grows to 10⁴, 5·10⁴ and 10⁵ nodes, then runs a
//! 100-tick mobility loop over the incremental topology refresh and reports
//! what the substrate refactors bought:
//!
//! * **memory** — total neighborhood-table bytes, which are O(zone · N)
//!   after the zone-local membership refactor (a per-node N-bit bitset
//!   would be ~1.25 GB at N = 10⁵; the actual tables are a few hundred
//!   bytes per node);
//! * **time** — wall-clock per mobility tick for the mover-driven refresh
//!   (mobility reports its movers; the grid and the CSR adjacency are
//!   patched around them; dirty-ball neighborhood rebuilds fan out over
//!   the persistent worker pool), plus the per-stage pipeline counters
//!   behind it: movers reported, grid entries re-bucketed, adjacency rows
//!   patched, changed rows, dirty neighborhoods, and how many ticks fell
//!   back to a wholesale pass;
//! * **full protocol** — after the tick loop, the network is wrapped in a
//!   [`CardWorld`] and the sharded protocol sweeps run at full N: one
//!   from-scratch `select_all_contacts` pass plus `PROTOCOL_ROUNDS`
//!   validation rounds, reporting wall time, per-second node throughput,
//!   contacts found, and the selection/maintenance message volume. This is
//!   the end-to-end demonstration that the *protocol* layers — not just
//!   the topology substrate — operate at N = 10⁵ (the tables produced are
//!   seed-deterministic regardless of worker or shard count; see
//!   `card_core::world`);
//! * **query workload** — queries are CARD's actual steady-state traffic
//!   (§III.C.4, Figs 13–15), so each row then drives the re-platformed
//!   query engine on the selected tables: a batch of random node-lookup
//!   DSQs swept through the sharded `CardWorld::query_all` (hit rate,
//!   mean escalation depth of the hits, messages per query, wall time and
//!   queries-per-second throughput), followed by anycast *resource*
//!   queries over a uniform and a clustered replica mix
//!   ([`QUERY_RESOURCES`] resources × [`QUERY_REPLICAS`] replicas,
//!   `card_core::resources::resource_query` on one reused scratch) whose
//!   hit rates land in the last two columns;
//! * **route-hint cache** — the §V hint phase drives repeat-heavy and
//!   Zipf-skewed query mixes over a pool of resolvable targets with the
//!   `card_core::hints` cache off (baseline), cold and warm, reporting
//!   messages per query for each, the warm hit rate, and the staleness
//!   counters after a burst of mobility churn — the headline
//!   messages-per-query cut the cache buys at N = 10⁵.
//!
//! Three mobility profiles bracket the churn range: *pedestrian* (random
//! walk, 0.5–2 m/s — the paper's assumed regime; every node drifts every
//! tick, so the pipeline's wholesale fallback carries the load),
//! *ped-dwell* (same speeds, but ~99% of nodes stand exactly still at any
//! instant — the few-movers regime where the mover-driven patch shines),
//! and *vehicular* (random waypoint, 10–30 m/s — an order of magnitude
//! more link churn per tick).
//!
//! Run from the CLI with `repro scale` (or `repro --scale`), overriding the
//! node counts with `--nodes N` — no recompile needed.

use crate::output::markdown_table;
use card_core::resources::{distribute, resource_query, ResourceDistribution, ResourceId};
use card_core::{CardConfig, CardWorld, QueryScratch};
use manet_routing::network::Network;
use mobility::model::MobilityModel;
use mobility::walk::RandomWalk;
use mobility::waypoint::RandomWaypoint;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::stats::MsgKind;
use sim_core::time::SimDuration;
use std::time::Instant;

/// Validation rounds run in the full-protocol phase of each scale row.
pub const PROTOCOL_ROUNDS: usize = 2;

/// Distinct resources of each query-phase resource mix.
pub const QUERY_RESOURCES: usize = 64;

/// Replicas per resource in each query-phase resource mix.
pub const QUERY_REPLICAS: usize = 8;

/// Escalation depth of the query phase (D of §III.C.4). The selection
/// phase's contact annulus is shallow (r = 4R), so D = 3 exercises real
/// multi-level escalation without flooding the contact graph.
pub const QUERY_DEPTH: u16 = 3;

/// Zipf exponent of the hint phase's skewed target mix (mild skew: the
/// hot targets dominate without drowning the tail entirely).
pub const HINT_ZIPF_EXPONENT: f64 = 1.1;

/// Mobility ticks of the hint phase's churn burst (long enough to cross
/// one validation period, so TTL epochs advance too).
pub const HINT_CHURN_TICKS: u64 = 10;

/// Dwell probability of the [`MobilityProfile::PedestrianDwell`] profile:
/// at any instant ~1% of nodes are walking and the rest stand exactly
/// still — a campus/conference-style pedestrian population, and the
/// regime where the mover-driven pipeline (reported movers → grid
/// re-bucket → CSR patch) does per-tick work proportional to the walkers.
pub const DWELL_PAUSE_PROB: f64 = 0.99;

/// Mobility profile of one scale run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MobilityProfile {
    /// Random walk at pedestrian speeds (0.5–2 m/s, 10 s heading epochs):
    /// every node drifts every tick, the full-churn stress case.
    Pedestrian,
    /// Pedestrian walk-and-dwell: same speeds, but ~99% of nodes stand
    /// exactly still at any instant ([`DWELL_PAUSE_PROB`]) — the
    /// few-movers regime the mover-driven pipeline targets.
    PedestrianDwell,
    /// Random waypoint at vehicular speeds (10–30 m/s, no pauses).
    Vehicular,
}

impl MobilityProfile {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MobilityProfile::Pedestrian => "pedestrian",
            MobilityProfile::PedestrianDwell => "ped-dwell",
            MobilityProfile::Vehicular => "vehicular",
        }
    }

    /// Instantiate the model for `n` nodes on `scenario`'s field.
    fn model(self, scenario: &Scenario, seed: u64) -> Box<dyn MobilityModel> {
        let rng = SeedSplitter::new(seed).stream("scale-mobility", 0);
        match self {
            MobilityProfile::Pedestrian => Box::new(RandomWalk::new(
                scenario.nodes,
                scenario.field(),
                0.5,
                2.0,
                10.0,
                rng,
            )),
            MobilityProfile::PedestrianDwell => Box::new(RandomWalk::new_with_dwell(
                scenario.nodes,
                scenario.field(),
                0.5,
                2.0,
                10.0,
                DWELL_PAUSE_PROB,
                rng,
            )),
            MobilityProfile::Vehicular => Box::new(RandomWaypoint::new(
                scenario.nodes,
                scenario.field(),
                10.0,
                30.0,
                0.0,
                rng,
            )),
        }
    }
}

/// Parameters of the scale family.
#[derive(Clone, Debug)]
pub struct Params {
    /// Node counts to run (each at scenario-5 density).
    pub nodes: Vec<usize>,
    /// Mobility ticks per run.
    pub ticks: usize,
    /// Simulated time per tick (the protocol's default refresh period).
    pub tick: SimDuration,
    /// Zone radius R.
    pub radius: u16,
    /// Node-lookup DSQs issued per row in the query phase (random
    /// source/target pairs, swept through `CardWorld::query_all`).
    pub queries: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nodes: vec![10_000, 50_000, 100_000],
            ticks: 100,
            tick: SimDuration::from_millis(100),
            radius: 2,
            queries: 10_000,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Small sizes for CI smoke runs.
    pub fn quick() -> Self {
        Params {
            nodes: vec![2_000],
            ticks: 20,
            queries: 2_000,
            ..Params::default()
        }
    }
}

/// Scenario-5 density (500 nodes / 710 m square, 50 m tx) scaled to `n`.
pub fn scaled_scenario(n: usize) -> Scenario {
    let side = 710.0 * (n as f64 / 500.0).sqrt();
    Scenario::new(n, side, side, 50.0)
}

/// Measured outcome of one (N, mobility) run.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// The scenario run.
    pub scenario: Scenario,
    /// Mobility profile.
    pub mobility: MobilityProfile,
    /// Mean zone size (members incl. owner).
    pub mean_zone: f64,
    /// Total neighborhood-table heap bytes (O(zone · N)).
    pub table_bytes: usize,
    /// What the same membership state would cost as per-node N-bit bitsets.
    pub bitset_equiv_bytes: usize,
    /// Wall time to build the initial world (placement + adjacency + tables).
    pub build_ms: f64,
    /// Mobility ticks executed.
    pub ticks: usize,
    /// Total wall time of all ticks.
    pub total_tick_ms: f64,
    /// Mean / max wall time per tick.
    pub mean_tick_ms: f64,
    /// Slowest single tick.
    pub max_tick_ms: f64,
    /// Mean movers reported per tick by the mobility model.
    pub mean_movers: f64,
    /// Mean grid entries re-bucketed per tick (cell-boundary crossers).
    pub mean_rebucketed: f64,
    /// Mean CSR adjacency rows re-queried per tick by the patch.
    pub mean_patched: f64,
    /// Ticks on which any wholesale fallback ran (grid relayout or full
    /// adjacency rebuild).
    pub full_fallback_ticks: usize,
    /// Mean adjacency-changed nodes per tick (link churn).
    pub mean_changed: f64,
    /// Mean dirty neighborhoods rebuilt per tick.
    pub mean_dirty: f64,
    /// Total candidate lanes classified by the two-phase f32 distance
    /// kernel across all ticks (0 when every tick ran a scalar path).
    pub kernel_lanes: u64,
    /// Kernel lanes that needed the exact f64 borderline resolution.
    pub kernel_exact: u64,
    /// Wall time of the from-scratch sharded `select_all_contacts` pass.
    pub select_ms: f64,
    /// Contact-selection throughput: nodes swept per second.
    pub select_nodes_per_s: f64,
    /// Total contacts standing after selection + validation rounds.
    pub total_contacts: usize,
    /// Selection messages (CSQ + backtrack + reply) over the whole phase.
    pub selection_msgs: u64,
    /// Total wall time of the [`PROTOCOL_ROUNDS`] validation rounds.
    pub validate_ms: f64,
    /// Validation throughput: nodes swept per second (all rounds pooled).
    pub validate_nodes_per_s: f64,
    /// Maintenance messages (validation + ack) over all rounds.
    pub maintenance_msgs: u64,
    /// Node-lookup DSQs issued in the query phase.
    pub query_count: usize,
    /// Fraction of those DSQs that found their target.
    pub query_hit_rate: f64,
    /// Mean escalation depth over the *hits* (0 = answered from the
    /// source's own zone).
    pub query_mean_depth: f64,
    /// Mean control messages (query + reply) per DSQ, hits and misses.
    pub query_msgs_per: f64,
    /// Wall time of the sharded `query_all` sweep.
    pub query_ms: f64,
    /// Query throughput: DSQs per second through the batched sweep.
    pub queries_per_s: f64,
    /// Anycast hit rate over the uniform resource mix.
    pub res_uniform_hit_rate: f64,
    /// Anycast hit rate over the clustered resource mix.
    pub res_clustered_hit_rate: f64,
    /// Resolvable (source, target) pairs in the hint phase's repeat pool.
    pub hint_pool: usize,
    /// Cache-off messages per query over the repeat-heavy mix.
    pub hint_base_msgs_per: f64,
    /// First hinted sweep (cold cache) messages per query.
    pub hint_cold_msgs_per: f64,
    /// Warm-cache messages per query over the repeat-heavy mix.
    pub hint_warm_msgs_per: f64,
    /// Warm-sweep hint hit rate (hits / lookups).
    pub hint_hit_rate: f64,
    /// Messages per query on the sweep following the churn burst.
    pub hint_churn_msgs_per: f64,
    /// Stale encounters + mobility evictions across the churn burst and
    /// the post-churn sweep.
    pub hint_stale_total: u64,
    /// Warm-cache messages per query over the Zipf-skewed mix.
    pub zipf_warm_msgs_per: f64,
    /// Warm-sweep hit rate over the Zipf-skewed mix.
    pub zipf_hit_rate: f64,
}

/// Run every (N, mobility-profile) combination of `p`.
pub fn run(p: &Params) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &n in &p.nodes {
        let scenario = scaled_scenario(n);
        for profile in [
            MobilityProfile::Pedestrian,
            MobilityProfile::PedestrianDwell,
            MobilityProfile::Vehicular,
        ] {
            rows.push(run_one(&scenario, profile, p));
        }
    }
    rows
}

/// The protocol configuration of the full-protocol phase: the scale
/// family's zone radius with a modest contact annulus and NoC, so the cost
/// profile stays comparable across N (the paper's own r/NoC sweeps live in
/// Figs 5–9 at paper sizes).
pub fn protocol_config(p: &Params) -> CardConfig {
    CardConfig::default()
        .with_radius(p.radius)
        .with_max_contact_distance(4 * p.radius)
        .with_target_contacts(4)
        .with_depth(QUERY_DEPTH)
        .with_seed(p.seed)
}

fn run_one(scenario: &Scenario, profile: MobilityProfile, p: &Params) -> ScaleRow {
    let t0 = Instant::now();
    let mut net = Network::from_scenario(scenario, p.radius, p.seed);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut model = profile.model(scenario, p.seed);

    let mut total_tick_ms = 0.0f64;
    let mut max_tick_ms = 0.0f64;
    let mut movers_sum = 0u64;
    let mut rebucketed_sum = 0u64;
    let mut patched_sum = 0u64;
    let mut full_fallback_ticks = 0usize;
    let mut changed_sum = 0u64;
    let mut dirty_sum = 0u64;
    let mut kernel_lanes = 0u64;
    let mut kernel_exact = 0u64;
    for _ in 0..p.ticks {
        let t = Instant::now();
        net.advance(model.as_mut(), p.tick);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        total_tick_ms += ms;
        max_tick_ms = max_tick_ms.max(ms);
        let c = net.pipeline_counters();
        movers_sum += c.movers_reported as u64;
        rebucketed_sum += c.grid_rebucketed as u64;
        patched_sum += c.rows_patched as u64;
        full_fallback_ticks += c.full_fallback as usize;
        changed_sum += c.changed as u64;
        dirty_sum += c.dirty as u64;
        kernel_lanes += c.kernel_lanes;
        kernel_exact += c.kernel_exact;
    }

    let n = scenario.nodes;
    let (mean_zone, table_bytes) = (net.tables().mean_size(), net.tables().approx_heap_bytes());

    // Full-protocol phase on the post-mobility topology: sharded contact
    // selection for every node, then PROTOCOL_ROUNDS validation rounds.
    let mut world = CardWorld::from_network(net, protocol_config(p));
    let t_sel = Instant::now();
    world.select_all_contacts();
    let select_ms = t_sel.elapsed().as_secs_f64() * 1e3;
    let t_val = Instant::now();
    for _ in 0..PROTOCOL_ROUNDS {
        world.validation_round();
    }
    let validate_ms = t_val.elapsed().as_secs_f64() * 1e3;
    let swept = (PROTOCOL_ROUNDS * n) as f64;

    // Query workload phase: a batch of random node-lookup DSQs through the
    // sharded sweep, then anycast resource queries over the two §V mixes.
    let splitter = SeedSplitter::new(p.seed);
    let mut pair_rng = splitter.stream("scale-query-pairs", 0);
    let pairs: Vec<(NodeId, NodeId)> = (0..p.queries)
        .map(|_| {
            (
                NodeId::from(pair_rng.index(n)),
                NodeId::from(pair_rng.index(n)),
            )
        })
        .collect();
    let t_query = Instant::now();
    let outcomes = world.query_all(&pairs);
    let query_ms = t_query.elapsed().as_secs_f64() * 1e3;
    let hits = outcomes.iter().filter(|o| o.found).count();
    let depth_sum: u64 = outcomes
        .iter()
        .filter(|o| o.found)
        .map(|o| o.depth_used as u64)
        .sum();
    let query_msg_sum: u64 = outcomes.iter().map(|o| o.total_messages()).sum();

    let res_hit_rate = |label: &'static str, dist: ResourceDistribution| -> f64 {
        let mut place_rng = splitter.stream(label, 0);
        let registry = distribute(world.network(), QUERY_RESOURCES, dist, &mut place_rng);
        let mut rng = splitter.stream(label, 1);
        let mut scratch = QueryScratch::with_capacity(n);
        let queries = (p.queries / 4).max(1);
        let mut found = 0usize;
        let mut stats = sim_core::stats::MsgStats::default();
        for _ in 0..queries {
            let source = NodeId::from(rng.index(n));
            let resource = ResourceId(rng.index(QUERY_RESOURCES) as u32);
            let out = resource_query(
                world.network(),
                world.contact_tables(),
                &registry,
                source,
                resource,
                QUERY_DEPTH,
                &mut stats,
                world.now(),
                &mut scratch,
            );
            found += out.found as usize;
        }
        found as f64 / queries as f64
    };
    let res_uniform_hit_rate = res_hit_rate(
        "scale-res-uniform",
        ResourceDistribution::UniformReplicated {
            replicas: QUERY_REPLICAS,
        },
    );
    let res_clustered_hit_rate = res_hit_rate(
        "scale-res-clustered",
        ResourceDistribution::Clustered {
            replicas: QUERY_REPLICAS,
        },
    );

    // Route-hint phase (§V): repeat-heavy and Zipf-skewed mixes over a
    // pool of *resolvable* targets — the regime where a query cache can
    // matter at all — measured cache-off, cold and warm, then through a
    // churn burst that exercises TTL epochs and mobility invalidation.
    let msgs_per = |outs: &[card_core::QueryOutcome]| -> f64 {
        let sum: u64 = outs.iter().map(|o| o.total_messages()).sum();
        sum as f64 / outs.len().max(1) as f64
    };
    let pool_target = (p.queries / 16).clamp(8, 512);
    let mut pool_rng = splitter.stream("scale-hint-pool", 0);
    let mut pool: Vec<(NodeId, NodeId)> = Vec::with_capacity(pool_target);
    for _ in 0..4 {
        if pool.len() >= pool_target {
            break;
        }
        let candidates: Vec<(NodeId, NodeId)> = (0..pool_target * 2)
            .map(|_| {
                (
                    NodeId::from(pool_rng.index(n)),
                    NodeId::from(pool_rng.index(n)),
                )
            })
            .collect();
        let outs = world.query_all_cache_off(&candidates);
        pool.extend(
            candidates
                .iter()
                .zip(&outs)
                .filter(|(_, o)| o.found)
                .map(|(&pair, _)| pair),
        );
    }
    pool.truncate(pool_target);
    if pool.is_empty() {
        // Pathological topology: fall back to trivially-resolvable self
        // lookups so the phase still measures the cache machinery.
        pool.push((NodeId::from(0usize), NodeId::from(0usize)));
    }
    let mut mix_rng = splitter.stream("scale-hint-mix", 0);
    let workload: Vec<(NodeId, NodeId)> = (0..p.queries)
        .map(|_| pool[mix_rng.index(pool.len())])
        .collect();

    let baseline = world.query_all_cache_off(&workload);
    let hint_base_msgs_per = msgs_per(&baseline);
    world.set_hints_enabled(true);
    world.clear_hints();
    world.reset_hint_stats();
    let cold = world.query_all(&workload);
    let hint_cold_msgs_per = msgs_per(&cold);
    world.reset_hint_stats();
    let warm = world.query_all(&workload);
    let hint_warm_msgs_per = msgs_per(&warm);
    let hint_hit_rate = world.hint_stats().hit_rate();
    for ((b, c), w) in baseline.iter().zip(&cold).zip(&warm) {
        assert!(
            b.found == c.found && b.found == w.found,
            "hints changed an answer — cost-only contract broken"
        );
    }

    // Churn burst: mobility + one validation round age and invalidate
    // hints; the following sweep pays the staleness and re-warms.
    world.reset_hint_stats();
    world.run_mobile(
        model.as_mut(),
        world.config().mobility_tick * HINT_CHURN_TICKS,
    );
    let churned = world.query_all(&workload);
    let hint_churn_msgs_per = msgs_per(&churned);
    let hint_stale_total = world.hint_stats().stale_total();

    // Zipf-skewed mix: rank i of the pool drawn ∝ 1/(i+1)^s.
    let zipf_cum: Vec<f64> = pool
        .iter()
        .enumerate()
        .scan(0.0f64, |acc, (i, _)| {
            *acc += 1.0 / ((i + 1) as f64).powf(HINT_ZIPF_EXPONENT);
            Some(*acc)
        })
        .collect();
    let zipf_total = *zipf_cum.last().expect("pool is non-empty");
    let mut zipf_rng = splitter.stream("scale-hint-zipf", 0);
    let zipf_workload: Vec<(NodeId, NodeId)> = (0..p.queries)
        .map(|_| {
            let u = zipf_rng.next_f64() * zipf_total;
            let rank = zipf_cum.partition_point(|&c| c < u).min(pool.len() - 1);
            pool[rank]
        })
        .collect();
    world.clear_hints();
    world.query_all(&zipf_workload); // cold pass warms the skewed heads
    world.reset_hint_stats();
    let zipf_warm = world.query_all(&zipf_workload);
    let zipf_warm_msgs_per = msgs_per(&zipf_warm);
    let zipf_hit_rate = world.hint_stats().hit_rate();

    ScaleRow {
        scenario: *scenario,
        mobility: profile,
        mean_zone,
        table_bytes,
        bitset_equiv_bytes: n * n.div_ceil(8),
        build_ms,
        ticks: p.ticks,
        total_tick_ms,
        mean_tick_ms: total_tick_ms / p.ticks.max(1) as f64,
        max_tick_ms,
        mean_movers: movers_sum as f64 / p.ticks.max(1) as f64,
        mean_rebucketed: rebucketed_sum as f64 / p.ticks.max(1) as f64,
        mean_patched: patched_sum as f64 / p.ticks.max(1) as f64,
        full_fallback_ticks,
        mean_changed: changed_sum as f64 / p.ticks.max(1) as f64,
        mean_dirty: dirty_sum as f64 / p.ticks.max(1) as f64,
        kernel_lanes,
        kernel_exact,
        select_ms,
        select_nodes_per_s: n as f64 / (select_ms / 1e3).max(1e-9),
        total_contacts: world.total_contacts(),
        selection_msgs: world.stats().total_where(MsgKind::is_selection),
        validate_ms,
        validate_nodes_per_s: swept / (validate_ms / 1e3).max(1e-9),
        maintenance_msgs: world.stats().total_where(MsgKind::is_maintenance),
        query_count: p.queries,
        query_hit_rate: hits as f64 / p.queries.max(1) as f64,
        query_mean_depth: depth_sum as f64 / hits.max(1) as f64,
        query_msgs_per: query_msg_sum as f64 / p.queries.max(1) as f64,
        query_ms,
        queries_per_s: p.queries as f64 / (query_ms / 1e3).max(1e-9),
        res_uniform_hit_rate,
        res_clustered_hit_rate,
        hint_pool: pool.len(),
        hint_base_msgs_per,
        hint_cold_msgs_per,
        hint_warm_msgs_per,
        hint_hit_rate,
        hint_churn_msgs_per,
        hint_stale_total,
        zipf_warm_msgs_per,
        zipf_hit_rate,
    }
}

/// Fraction of kernel lanes decided purely in f32 (no exact f64
/// resolution needed); 1.0 when no lanes ran (vacuously all-fast).
fn kernel_fast_rate(lanes: u64, exact: u64) -> f64 {
    if lanes == 0 {
        1.0
    } else {
        1.0 - exact as f64 / lanes as f64
    }
}

/// Current resident-set size in bytes, read from `/proc/self/statm`
/// (second field × page size). Returns 0 where procfs is unavailable
/// (non-Linux), so callers render "0 B" rather than failing.
fn rss_bytes() -> usize {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|f| f.parse::<usize>().ok())
        })
        .map_or(0, |pages| pages * 4096)
}

/// Parameters of the raw-speed tier (`repro scale-raw`): the N=10⁶ run.
/// First the topology substrate alone — placement, kernel build,
/// mobility + incremental refresh loop (with the range-annulus mover
/// pre-filter engaged; its skips land in the counter columns) — then a
/// **full-protocol** phase on the post-mobility topology: sharded
/// contact selection for every node, [`PROTOCOL_ROUNDS`] validation
/// rounds, and a hinted query sweep whose cross-shard hint deposits
/// travel the explicit message plane. Per-shard memory, throughput and
/// plane-traffic columns show what shard-resident protocol state costs
/// and carries at 10⁶ nodes.
#[derive(Clone, Debug)]
pub struct RawParams {
    /// Node counts to run (each at scenario-5 density).
    pub nodes: Vec<usize>,
    /// Mobility ticks per run.
    pub ticks: usize,
    /// Simulated time per tick.
    pub tick: SimDuration,
    /// Zone radius R (kept at 1: the tier stresses scale, not table
    /// depth — the paper's own r/NoC sweeps live in Figs 5–9).
    pub radius: u16,
    /// Queries per sweep of the full-protocol phase (two sweeps run:
    /// cold — deposits route through the plane — then warm).
    pub queries: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for RawParams {
    fn default() -> Self {
        RawParams {
            nodes: vec![1_000_000],
            ticks: 20,
            tick: SimDuration::from_millis(100),
            radius: 1,
            queries: 4096,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl RawParams {
    /// Small sizes for CI smoke runs.
    pub fn quick() -> Self {
        RawParams {
            nodes: vec![20_000],
            ticks: 5,
            queries: 1024,
            ..RawParams::default()
        }
    }
}

/// The protocol configuration of the raw tier's full-protocol phase:
/// shallow annulus and one hint slot per bucket so the per-node state
/// stays lean at N = 10⁶ (the hint table is the dominant per-node cost;
/// one slot × [`card_core::hints::HINT_BUCKETS`] buckets ≈ 100 MB total
/// at a million nodes).
pub fn raw_protocol_config(p: &RawParams) -> CardConfig {
    CardConfig::default()
        .with_radius(p.radius)
        .with_max_contact_distance(4 * p.radius)
        .with_target_contacts(4)
        .with_depth(QUERY_DEPTH)
        .with_hints(true)
        .with_hint_slots_per_bucket(1)
        .with_seed(p.seed)
}

/// Measured outcome of one raw-tier (N, mobility) run.
#[derive(Clone, Debug)]
pub struct RawRow {
    /// The scenario run.
    pub scenario: Scenario,
    /// Mobility profile.
    pub mobility: MobilityProfile,
    /// Wall time of the initial world build (placement + parallel kernel
    /// adjacency + tables).
    pub build_ms: f64,
    /// Resident-set size right after the build (bytes; 0 off-Linux).
    pub build_rss_bytes: usize,
    /// Resident-set size after the tick loop (bytes; 0 off-Linux).
    pub end_rss_bytes: usize,
    /// Mobility ticks executed.
    pub ticks: usize,
    /// Mean / max wall time per tick (ms).
    pub mean_tick_ms: f64,
    /// Slowest single tick (ms).
    pub max_tick_ms: f64,
    /// Mobility+refresh throughput: node-ticks per second over the loop.
    pub node_ticks_per_s: f64,
    /// Mean movers reported per tick.
    pub mean_movers: f64,
    /// Movers the range-annulus pre-filter proved inert (summed over all
    /// ticks) — work the patch never had to do.
    pub movers_skipped: u64,
    /// Ticks on which any wholesale fallback ran.
    pub full_fallback_ticks: usize,
    /// Total candidate lanes classified by the f32 kernel.
    pub kernel_lanes: u64,
    /// Kernel lanes resolved by the exact f64 borderline test.
    pub kernel_exact: u64,
    /// Total neighborhood-table heap bytes.
    pub table_bytes: usize,
    // --- full-protocol phase ---
    /// Wall time of the sharded from-scratch contact selection (ms).
    pub select_ms: f64,
    /// Wall time of the [`PROTOCOL_ROUNDS`] validation rounds (ms).
    pub validate_ms: f64,
    /// Node sweeps per second across selection + validation
    /// ((1 + PROTOCOL_ROUNDS) · N over their combined wall time).
    pub protocol_nodes_per_s: f64,
    /// Contacts held after selection + validation.
    pub total_contacts: usize,
    /// Queries per sweep of the query phase.
    pub queries: usize,
    /// Hit rate of the warm (second) sweep.
    pub query_hit_rate: f64,
    /// Queries per second over both sweeps (cold + warm).
    pub queries_per_s: f64,
    /// Protocol shards the world ran with.
    pub shard_count: usize,
    /// Smallest per-shard resident protocol state (contact tables + RNG
    /// streams + backoff + hint slots), bytes.
    pub shard_mem_min: usize,
    /// Mean per-shard resident protocol state, bytes.
    pub shard_mem_mean: usize,
    /// Largest per-shard resident protocol state, bytes.
    pub shard_mem_max: usize,
    /// Messages routed through the cross-shard plane (total sent).
    pub plane_sent: u64,
    /// Plane messages that actually crossed a shard boundary.
    pub plane_cross: u64,
    /// Plane messages whose source and destination shard coincided.
    pub plane_local: u64,
    /// Validation-traffic span-boundary crossings metered (not
    /// materialized) into the plane's stats.
    pub plane_span_crossings: u64,
    /// Resident-set size after the full-protocol phase (bytes).
    pub protocol_rss_bytes: usize,
}

/// Run the raw tier: pedestrian (full-churn kernel rebuild every tick)
/// and ped-dwell (mover-driven kernel patch) at each N.
pub fn run_raw(p: &RawParams) -> Vec<RawRow> {
    let mut rows = Vec::new();
    for &n in &p.nodes {
        let scenario = scaled_scenario(n);
        for profile in [
            MobilityProfile::Pedestrian,
            MobilityProfile::PedestrianDwell,
        ] {
            rows.push(run_one_raw(&scenario, profile, p));
        }
    }
    rows
}

fn run_one_raw(scenario: &Scenario, profile: MobilityProfile, p: &RawParams) -> RawRow {
    let t0 = Instant::now();
    let mut net = Network::from_scenario(scenario, p.radius, p.seed);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let build_rss_bytes = rss_bytes();
    let mut model = profile.model(scenario, p.seed);

    let mut total_tick_ms = 0.0f64;
    let mut max_tick_ms = 0.0f64;
    let mut movers_sum = 0u64;
    let mut movers_skipped = 0u64;
    let mut full_fallback_ticks = 0usize;
    let mut kernel_lanes = 0u64;
    let mut kernel_exact = 0u64;
    for _ in 0..p.ticks {
        let t = Instant::now();
        net.advance(model.as_mut(), p.tick);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        total_tick_ms += ms;
        max_tick_ms = max_tick_ms.max(ms);
        let c = net.pipeline_counters();
        movers_sum += c.movers_reported as u64;
        movers_skipped += c.movers_skipped as u64;
        full_fallback_ticks += c.full_fallback as usize;
        kernel_lanes += c.kernel_lanes;
        kernel_exact += c.kernel_exact;
    }
    let n = scenario.nodes;
    let end_rss_bytes = rss_bytes();
    let table_bytes = net.tables().approx_heap_bytes();

    // Full-protocol phase: the network moves into a sharded CardWorld
    // (per-node protocol state becomes shard-resident; cross-shard hint
    // deposits route through the explicit message plane). One
    // from-scratch selection pass, PROTOCOL_ROUNDS validation rounds,
    // then a hinted query sweep run twice over the same pairs — the cold
    // sweep's plane-routed deposits make the warm sweep's hits.
    let mut world = CardWorld::from_network(net, raw_protocol_config(p));
    let t_sel = Instant::now();
    world.select_all_contacts();
    let select_ms = t_sel.elapsed().as_secs_f64() * 1e3;
    let t_val = Instant::now();
    for _ in 0..PROTOCOL_ROUNDS {
        world.validation_round();
    }
    let validate_ms = t_val.elapsed().as_secs_f64() * 1e3;

    // Targets are aimed through the contact graph: two random contact
    // hops from the source, then a random member of the landing node's
    // zone — resolvable within D by construction. Uniform random pairs
    // at N = 10⁶ essentially never resolve at this density, which would
    // leave the hint deposits (and so the plane columns) vacuously near
    // zero.
    let splitter = SeedSplitter::new(p.seed);
    let mut pair_rng = splitter.stream("scale-raw-query-pairs", 0);
    let pairs: Vec<(NodeId, NodeId)> = {
        let nbhd = world.network().tables();
        (0..p.queries)
            .map(|_| {
                let s = NodeId::from(pair_rng.index(n));
                let mut at = s;
                for _ in 0..2 {
                    let t = world.contact_table(at);
                    if t.is_empty() {
                        break;
                    }
                    at = t.contacts()[pair_rng.index(t.len())].id;
                }
                let members = nbhd.of(at).members();
                let target = if members.is_empty() {
                    at
                } else {
                    members[pair_rng.index(members.len())]
                };
                (s, target)
            })
            .collect()
    };
    let mut outcomes = Vec::new();
    let t_query = Instant::now();
    world.query_all_into(&pairs, &mut outcomes); // cold: deposits route
    world.query_all_into(&pairs, &mut outcomes); // warm: hints pay out
    let query_ms = t_query.elapsed().as_secs_f64() * 1e3;
    let hits = outcomes.iter().filter(|o| o.found).count();

    let shard_mem = world.shard_memory_bytes();
    let ps = world.plane_stats();
    RawRow {
        scenario: *scenario,
        mobility: profile,
        build_ms,
        build_rss_bytes,
        end_rss_bytes,
        ticks: p.ticks,
        mean_tick_ms: total_tick_ms / p.ticks.max(1) as f64,
        max_tick_ms,
        node_ticks_per_s: (n * p.ticks) as f64 / (total_tick_ms / 1e3).max(1e-9),
        mean_movers: movers_sum as f64 / p.ticks.max(1) as f64,
        movers_skipped,
        full_fallback_ticks,
        kernel_lanes,
        kernel_exact,
        table_bytes,
        select_ms,
        validate_ms,
        protocol_nodes_per_s: ((1 + PROTOCOL_ROUNDS) * n) as f64
            / ((select_ms + validate_ms) / 1e3).max(1e-9),
        total_contacts: world.total_contacts(),
        queries: p.queries,
        query_hit_rate: hits as f64 / p.queries.max(1) as f64,
        queries_per_s: (2 * p.queries) as f64 / (query_ms / 1e3).max(1e-9),
        shard_count: world.shard_count(),
        shard_mem_min: shard_mem.iter().copied().min().unwrap_or(0),
        shard_mem_mean: shard_mem.iter().sum::<usize>() / shard_mem.len().max(1),
        shard_mem_max: shard_mem.iter().copied().max().unwrap_or(0),
        plane_sent: ps.sent,
        plane_cross: ps.cross_shard,
        plane_local: ps.local,
        plane_span_crossings: ps.metered_crossings,
        protocol_rss_bytes: rss_bytes(),
    }
}

/// Render the raw tier as two Markdown tables: the topology-substrate
/// speed columns (with the annulus pre-filter's skip counter), then the
/// full-protocol columns — per-shard memory, protocol/query throughput
/// and cross-shard plane traffic.
pub fn render_raw(p: &RawParams, rows: &[RawRow]) -> String {
    let headers = [
        "N",
        "Mobility",
        "Build (ms)",
        "RSS build",
        "RSS end",
        "Table mem",
        "Ticks",
        "Tick mean/max (ms)",
        "Node-ticks/s",
        "Movers/tick",
        "Movers skipped",
        "Fallback ticks",
        "Kernel lanes",
        "Exact checks",
        "f32-only %",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                format!("{:.0}", r.build_ms),
                fmt_bytes(r.build_rss_bytes),
                fmt_bytes(r.end_rss_bytes),
                fmt_bytes(r.table_bytes),
                r.ticks.to_string(),
                format!("{:.2} / {:.2}", r.mean_tick_ms, r.max_tick_ms),
                fmt_rate(r.node_ticks_per_s),
                format!("{:.1}", r.mean_movers),
                fmt_rate(r.movers_skipped as f64),
                r.full_fallback_ticks.to_string(),
                fmt_rate(r.kernel_lanes as f64),
                fmt_rate(r.kernel_exact as f64),
                format!(
                    "{:.2}%",
                    100.0 * kernel_fast_rate(r.kernel_lanes, r.kernel_exact)
                ),
            ]
        })
        .collect();
    let proto_headers = [
        "N",
        "Mobility",
        "Select (ms)",
        "Validate (ms)",
        "Node-sweeps/s",
        "Contacts",
        "Queries ×2",
        "Warm hit %",
        "Queries/s",
        "Shards",
        "Shard mem min/mean/max",
        "Plane sent",
        "Cross-shard",
        "Local",
        "Span crossings",
        "RSS protocol",
    ];
    let proto_body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                format!("{:.0}", r.select_ms),
                format!("{:.0}", r.validate_ms),
                fmt_rate(r.protocol_nodes_per_s),
                fmt_rate(r.total_contacts as f64),
                r.queries.to_string(),
                format!("{:.1}%", 100.0 * r.query_hit_rate),
                fmt_rate(r.queries_per_s),
                r.shard_count.to_string(),
                format!(
                    "{} / {} / {}",
                    fmt_bytes(r.shard_mem_min),
                    fmt_bytes(r.shard_mem_mean),
                    fmt_bytes(r.shard_mem_max)
                ),
                fmt_rate(r.plane_sent as f64),
                fmt_rate(r.plane_cross as f64),
                fmt_rate(r.plane_local as f64),
                fmt_rate(r.plane_span_crossings as f64),
                fmt_bytes(r.protocol_rss_bytes),
            ]
        })
        .collect();
    format!(
        "### Scale raw — topology-substrate speed runs at scenario-5 density (R={}, tick={:.0} ms)\n\n{}\n\n\
         ### Scale raw — full protocol on shard-resident state (selection + {} validation rounds + hinted cold/warm query sweeps through the message plane)\n\n{}",
        p.radius,
        p.tick.as_secs_f64() * 1e3,
        markdown_table(&headers, &body),
        PROTOCOL_ROUNDS,
        markdown_table(&proto_headers, &proto_body)
    )
}

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Render the scale runs as two Markdown tables: the topology substrate
/// columns, then the full-protocol throughput columns.
pub fn render(p: &Params, rows: &[ScaleRow]) -> String {
    let headers = [
        "N",
        "Mobility",
        "Mean zone",
        "Table mem (O(zone·N))",
        "Bitset equiv (O(N²))",
        "Build (ms)",
        "Ticks",
        "Tick mean/max (ms)",
        "Movers/tick",
        "Rebucket/tick",
        "Patched/tick",
        "Changed/tick",
        "Dirty/tick",
        "Fallback ticks",
        "Kernel lanes/tick",
        "f32-only %",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                format!("{:.1}", r.mean_zone),
                fmt_bytes(r.table_bytes),
                fmt_bytes(r.bitset_equiv_bytes),
                format!("{:.0}", r.build_ms),
                r.ticks.to_string(),
                format!("{:.2} / {:.2}", r.mean_tick_ms, r.max_tick_ms),
                format!("{:.1}", r.mean_movers),
                format!("{:.1}", r.mean_rebucketed),
                format!("{:.1}", r.mean_patched),
                format!("{:.1}", r.mean_changed),
                format!("{:.1}", r.mean_dirty),
                r.full_fallback_ticks.to_string(),
                fmt_rate(r.kernel_lanes as f64 / r.ticks.max(1) as f64),
                format!(
                    "{:.2}%",
                    100.0 * kernel_fast_rate(r.kernel_lanes, r.kernel_exact)
                ),
            ]
        })
        .collect();
    let cfg = protocol_config(p);
    let proto_headers = [
        "N",
        "Mobility",
        "Select (ms)",
        "Select (nodes/s)",
        "Contacts",
        "Selection msgs",
        "Validate (ms)",
        "Validate (nodes/s)",
        "Maintenance msgs",
    ];
    let proto_body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                format!("{:.0}", r.select_ms),
                fmt_rate(r.select_nodes_per_s),
                r.total_contacts.to_string(),
                r.selection_msgs.to_string(),
                format!("{:.0}", r.validate_ms),
                fmt_rate(r.validate_nodes_per_s),
                r.maintenance_msgs.to_string(),
            ]
        })
        .collect();
    let query_headers = [
        "N",
        "Mobility",
        "Queries",
        "Hit %",
        "Mean depth",
        "Msgs/query",
        "Query (ms)",
        "Queries/s",
        "Res uni hit %",
        "Res clu hit %",
    ];
    let query_body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                r.query_count.to_string(),
                format!("{:.1}%", 100.0 * r.query_hit_rate),
                format!("{:.2}", r.query_mean_depth),
                format!("{:.1}", r.query_msgs_per),
                format!("{:.0}", r.query_ms),
                fmt_rate(r.queries_per_s),
                format!("{:.1}%", 100.0 * r.res_uniform_hit_rate),
                format!("{:.1}%", 100.0 * r.res_clustered_hit_rate),
            ]
        })
        .collect();
    let hint_headers = [
        "N",
        "Mobility",
        "Pool",
        "Base msgs/q",
        "Cold msgs/q",
        "Warm msgs/q",
        "Warm Δ%",
        "Hit %",
        "Churn msgs/q",
        "Stale",
        "Zipf msgs/q",
        "Zipf hit %",
    ];
    let hint_body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let cut = if r.hint_base_msgs_per > 0.0 {
                100.0 * (r.hint_base_msgs_per - r.hint_warm_msgs_per) / r.hint_base_msgs_per
            } else {
                0.0
            };
            vec![
                r.scenario.nodes.to_string(),
                r.mobility.label().to_string(),
                r.hint_pool.to_string(),
                format!("{:.1}", r.hint_base_msgs_per),
                format!("{:.1}", r.hint_cold_msgs_per),
                format!("{:.1}", r.hint_warm_msgs_per),
                format!("{cut:.1}%"),
                format!("{:.1}%", 100.0 * r.hint_hit_rate),
                format!("{:.1}", r.hint_churn_msgs_per),
                r.hint_stale_total.to_string(),
                format!("{:.1}", r.zipf_warm_msgs_per),
                format!("{:.1}%", 100.0 * r.zipf_hit_rate),
            ]
        })
        .collect();
    format!(
        "### Scale — {}-tick mobility runs at scenario-5 density (R={}, tick={:.0} ms)\n\n{}\n\n\
         ### Scale — full-protocol phase (sharded sweeps; EM, r={}, NoC={}, {} validation rounds)\n\n{}\n\n\
         ### Scale — query workload phase (sharded `query_all` DSQs at D={}; resource mixes {}×{} replicas)\n\n{}\n\n\
         ### Scale — route-hint cache phase (repeat-heavy + Zipf s={} mixes over the resolvable pool; churn burst of {} ticks)\n\n{}",
        p.ticks,
        p.radius,
        p.tick.as_secs_f64() * 1e3,
        markdown_table(&headers, &body),
        cfg.max_contact_distance,
        cfg.target_contacts,
        PROTOCOL_ROUNDS,
        markdown_table(&proto_headers, &proto_body),
        QUERY_DEPTH,
        QUERY_RESOURCES,
        QUERY_REPLICAS,
        markdown_table(&query_headers, &query_body),
        HINT_ZIPF_EXPONENT,
        HINT_CHURN_TICKS,
        markdown_table(&hint_headers, &hint_body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            nodes: vec![500],
            ticks: 5,
            queries: 300,
            ..Params::default()
        }
    }

    #[test]
    fn scaled_scenarios_keep_density() {
        let base = scaled_scenario(500);
        for n in [500usize, 10_000, 100_000] {
            let s = scaled_scenario(n);
            assert_eq!(s.nodes, n);
            assert!(
                (s.density() - base.density()).abs() < 1e-9,
                "density drifts at N={n}"
            );
        }
    }

    #[test]
    fn runs_every_mobility_profile_per_n() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mobility, MobilityProfile::Pedestrian);
        assert_eq!(rows[1].mobility, MobilityProfile::PedestrianDwell);
        assert_eq!(rows[2].mobility, MobilityProfile::Vehicular);
        for r in &rows {
            assert_eq!(r.ticks, 5);
            assert!(r.mean_zone >= 1.0, "zones include at least the owner");
            assert!(r.total_tick_ms >= 0.0);
        }
    }

    #[test]
    fn vehicular_churns_more_than_pedestrian() {
        let rows = run(&tiny());
        assert!(
            rows[2].mean_changed >= rows[0].mean_changed,
            "30 m/s should flip at least as many links per tick as 2 m/s (ped {}, veh {})",
            rows[0].mean_changed,
            rows[2].mean_changed
        );
    }

    #[test]
    fn table_memory_is_zone_local_not_quadratic() {
        // Large enough that an N-bit-per-node bitset would dominate the
        // zone tables (the crossover is a few thousand nodes at this
        // density); 0 ticks — this test is about the build, not mobility.
        let p = Params {
            nodes: vec![10_000],
            ticks: 0,
            ..Params::default()
        };
        let rows = run(&p);
        for r in &rows {
            // the zone-local tables must come in far under the dense-bitset
            // footprint they replaced
            assert!(
                r.table_bytes < r.bitset_equiv_bytes / 2,
                "tables {} B not well below bitset regime {} B",
                r.table_bytes,
                r.bitset_equiv_bytes
            );
            // and per-node cost must look like O(zone): a generous constant
            // times zone size, not anything resembling N bits
            let per_node = r.table_bytes as f64 / r.scenario.nodes as f64;
            assert!(
                per_node < 64.0 * r.mean_zone + 256.0,
                "per-node table memory {per_node:.0} B is not O(zone)"
            );
        }
    }

    #[test]
    fn render_mentions_every_row() {
        let p = tiny();
        let rows = run(&p);
        let text = render(&p, &rows);
        assert!(text.contains("pedestrian"));
        assert!(text.contains("vehicular"));
        assert!(text.contains("500"));
        assert!(text.contains("full-protocol phase"));
        assert!(text.contains("Validate (nodes/s)"));
        assert!(text.contains("Movers/tick"));
        assert!(text.contains("Patched/tick"));
        assert!(text.contains("Fallback ticks"));
        assert!(text.contains("Kernel lanes/tick"));
        assert!(text.contains("f32-only %"));
        assert!(text.contains("query workload phase"));
        assert!(text.contains("Queries/s"));
        assert!(text.contains("Res uni hit %"));
        assert!(text.contains("route-hint cache phase"));
        assert!(text.contains("Warm Δ%"));
        assert!(text.contains("Zipf msgs/q"));
    }

    #[test]
    fn hint_phase_cuts_warm_traffic_on_repeat_mixes() {
        let rows = run(&tiny());
        for r in &rows {
            assert!(r.hint_pool > 0, "{:?} built no pool", r.mobility);
            assert!(
                (0.0..=1.0).contains(&r.hint_hit_rate) && (0.0..=1.0).contains(&r.zipf_hit_rate)
            );
            assert!(
                r.hint_hit_rate > 0.0,
                "{:?}: a warm repeat sweep must hit the cache",
                r.mobility
            );
            assert!(
                r.zipf_hit_rate > 0.0,
                "{:?}: the Zipf heads must hit the cache",
                r.mobility
            );
            assert!(
                r.hint_warm_msgs_per <= r.hint_base_msgs_per,
                "{:?}: warm sweep ({:.1} msgs/q) may not exceed cache-off ({:.1})",
                r.mobility,
                r.hint_warm_msgs_per,
                r.hint_base_msgs_per
            );
            assert!(r.hint_churn_msgs_per >= 0.0);
        }
    }

    #[test]
    fn query_phase_produces_sane_throughput_columns() {
        let rows = run(&tiny());
        for r in &rows {
            assert_eq!(r.query_count, 300);
            assert!(r.queries_per_s > 0.0, "{:?} query throughput", r.mobility);
            assert!((0.0..=1.0).contains(&r.query_hit_rate));
            assert!((0.0..=1.0).contains(&r.res_uniform_hit_rate));
            assert!((0.0..=1.0).contains(&r.res_clustered_hit_rate));
            assert!(
                r.query_hit_rate > 0.0,
                "some of 300 random DSQs on a 500-node world must hit ({:?})",
                r.mobility
            );
            assert!(r.query_mean_depth <= QUERY_DEPTH as f64);
            // 64 resources × 8 replicas over 500 nodes: anycast should do
            // at least as well as same-depth unicast on average
            assert!(
                r.res_uniform_hit_rate >= r.query_hit_rate * 0.8,
                "uniform {} vs unicast {}",
                r.res_uniform_hit_rate,
                r.query_hit_rate
            );
        }
    }

    #[test]
    fn pipeline_counters_are_collected_per_tick() {
        let rows = run(&tiny());
        for r in &rows {
            assert!(r.mean_movers > 0.0, "{:?} reported no movers", r.mobility);
            assert!(r.mean_patched > 0.0 || r.full_fallback_ticks == r.ticks);
            assert!(r.full_fallback_ticks <= r.ticks);
            assert!(r.mean_rebucketed <= r.scenario.nodes as f64);
        }
        let n = rows[0].scenario.nodes as f64;
        // continuous profiles move everyone: every tick falls back
        for r in [&rows[0], &rows[2]] {
            assert_eq!(
                r.full_fallback_ticks, r.ticks,
                "{:?} moves all nodes — every tick must take the wholesale path",
                r.mobility
            );
            assert!(r.mean_movers >= n - 0.5);
        }
        // the dwell profile is the few-movers regime: the pipeline must
        // stay on the patch path and touch far fewer rows than N
        let dwell = &rows[1];
        assert_eq!(
            dwell.full_fallback_ticks, 0,
            "~1% walkers must never trip the churn fallback"
        );
        assert!(
            dwell.mean_movers < n / 8.0,
            "dwell movers/tick ({:.1}) should be a small fraction of N",
            dwell.mean_movers
        );
        assert!(
            dwell.mean_patched < 0.6 * n,
            "dwell patched rows/tick ({:.1}) should sit well under N={n}",
            dwell.mean_patched
        );
        assert!(
            dwell.mean_rebucketed <= dwell.mean_movers,
            "only reported movers can be re-bucketed on patch ticks"
        );
    }

    #[test]
    fn kernel_counters_reflect_refresh_paths() {
        let rows = run(&tiny());
        // pedestrian/vehicular ticks fall back to the report-free kernel
        // rebuild; the dwell profile patches through the kernel — either
        // way lanes must flow, and exact checks can never exceed them
        for r in &rows {
            assert!(
                r.kernel_lanes > 0,
                "{:?}: kernel lanes must be counted",
                r.mobility
            );
            assert!(r.kernel_exact <= r.kernel_lanes);
        }
    }

    #[test]
    fn raw_tier_runs_and_reports_throughput() {
        let p = RawParams {
            nodes: vec![500],
            ticks: 3,
            ..RawParams::default()
        };
        let rows = run_raw(&p);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].mobility, MobilityProfile::Pedestrian);
        assert_eq!(rows[1].mobility, MobilityProfile::PedestrianDwell);
        for r in &rows {
            assert_eq!(r.ticks, 3);
            assert!(r.node_ticks_per_s > 0.0);
            assert!(r.kernel_lanes > 0, "{:?} classified no lanes", r.mobility);
            assert!(r.kernel_exact <= r.kernel_lanes);
            assert!(r.mean_movers > 0.0);
            assert!(
                r.movers_skipped <= r.ticks as u64 * r.scenario.nodes as u64,
                "skips are bounded by the reports"
            );
            // Linux (the only supported bench platform) must report RSS
            #[cfg(target_os = "linux")]
            assert!(r.build_rss_bytes > 0 && r.end_rss_bytes > 0);

            // Full-protocol phase: shard-resident state + plane traffic
            // must be populated on a 500-node world.
            assert!(r.total_contacts > 0, "{:?} found no contacts", r.mobility);
            assert!(r.protocol_nodes_per_s > 0.0);
            assert!(r.queries_per_s > 0.0);
            assert!((0.0..=1.0).contains(&r.query_hit_rate));
            assert!(r.shard_count >= 1);
            assert!(r.shard_mem_min > 0, "every shard owns resident state");
            assert!(r.shard_mem_min <= r.shard_mem_mean);
            assert!(r.shard_mem_mean <= r.shard_mem_max);
            assert_eq!(
                r.plane_sent,
                r.plane_cross + r.plane_local,
                "plane accounting must balance"
            );
            assert!(
                r.plane_span_crossings > 0,
                "validation traffic must meter span crossings"
            );
        }
        let text = render_raw(&p, &rows);
        assert!(text.contains("Node-ticks/s"));
        assert!(text.contains("RSS build"));
        assert!(text.contains("f32-only %"));
        assert!(text.contains("ped-dwell"));
        assert!(text.contains("Movers skipped"));
        assert!(text.contains("Shard mem min/mean/max"));
        assert!(text.contains("Cross-shard"));
    }

    #[test]
    fn raw_tier_full_protocol_is_run_deterministic() {
        // The raw tier's protocol phase rides the same sharded sweeps as
        // `run`; repeat runs must land identical protocol outcomes and
        // identical plane traffic.
        let p = RawParams {
            nodes: vec![400],
            ticks: 2,
            queries: 128,
            ..RawParams::default()
        };
        let a = run_raw(&p);
        let b = run_raw(&p);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.total_contacts, rb.total_contacts);
            assert_eq!(ra.query_hit_rate, rb.query_hit_rate);
            assert_eq!(ra.plane_sent, rb.plane_sent);
            assert_eq!(ra.plane_cross, rb.plane_cross);
            assert_eq!(ra.plane_local, rb.plane_local);
            assert_eq!(ra.plane_span_crossings, rb.plane_span_crossings);
        }
    }

    #[test]
    fn kernel_fast_rate_handles_edge_cases() {
        assert_eq!(kernel_fast_rate(0, 0), 1.0);
        assert_eq!(kernel_fast_rate(100, 0), 1.0);
        assert_eq!(kernel_fast_rate(100, 100), 0.0);
        assert!((kernel_fast_rate(200, 50) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn protocol_phase_selects_contacts_and_counts_messages() {
        let rows = run(&tiny());
        for r in &rows {
            assert!(
                r.total_contacts > 0,
                "a 500-node world must yield contacts ({:?})",
                r.mobility
            );
            assert!(r.selection_msgs > 0);
            assert!(r.maintenance_msgs > 0, "validation rounds must poll paths");
            assert!(r.select_nodes_per_s > 0.0);
            assert!(r.validate_nodes_per_s > 0.0);
        }
    }

    #[test]
    fn protocol_phase_is_seed_deterministic() {
        // The sharded sweeps must land identical protocol outcomes on
        // repeat runs (worker scheduling may differ; results must not).
        let a = run(&tiny());
        let b = run(&tiny());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.total_contacts, rb.total_contacts);
            assert_eq!(ra.selection_msgs, rb.selection_msgs);
            assert_eq!(ra.maintenance_msgs, rb.maintenance_msgs);
        }
    }
}

//! Extension experiment: resource distributions (§V future work).
//!
//! The paper closes with "We plan to further evaluate our protocols under
//! various scenarios of … resource distributions in the network". This
//! experiment runs that study: resources replicated k ∈ {1, 2, 4, 8} times,
//! placed either uniformly at random or clustered (replicas on adjacent
//! nodes), discovered by anycast DSQs from random sources. Expected shape:
//! success rises and per-query traffic falls with replication; *clustered*
//! replicas behave like fewer effective instances (they often share one
//! neighborhood), so uniform placement dominates at equal k.

use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::resources::{distribute, resource_query, ResourceDistribution, ResourceId};
use card_core::{CardConfig, CardWorld, QueryScratch};
use net_topology::node::NodeId;
use net_topology::scenario::{Scenario, SCENARIO_5};
use sim_core::rng::SeedSplitter;
use sim_core::stats::MsgStats;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family.
    pub scenario: Scenario,
    /// CARD neighborhood radius.
    pub radius: u16,
    /// CARD maximum contact distance.
    pub max_contact_distance: u16,
    /// CARD NoC.
    pub target_contacts: usize,
    /// Depth of search for the anycast queries.
    pub depth: u16,
    /// Replica counts to sweep.
    pub replica_counts: Vec<usize>,
    /// Number of distinct resources per cell.
    pub resources: usize,
    /// Queries per cell.
    pub queries: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 16,
            target_contacts: 10,
            depth: 2,
            replica_counts: vec![1, 2, 4, 8],
            resources: 20,
            queries: 100,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 9,
            target_contacts: 5,
            depth: 2,
            replica_counts: vec![1, 4],
            resources: 10,
            queries: 40,
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Result of one (distribution, replicas) cell.
#[derive(Clone, Debug)]
pub struct DistRow {
    /// Distribution label.
    pub distribution: &'static str,
    /// Replicas per resource.
    pub replicas: usize,
    /// Fraction of queries that found an instance.
    pub success: f64,
    /// Mean messages per query (query + reply).
    pub msgs_per_query: f64,
    /// Fraction of queries answered from the source's own zone (free).
    pub zone_hits: f64,
}

/// Run the sweep (one world, shared across cells; registries differ).
pub fn run(params: &Params) -> Vec<DistRow> {
    let cfg = CardConfig::default()
        .with_seed(params.seed)
        .with_radius(params.radius)
        .with_max_contact_distance(params.max_contact_distance)
        .with_target_contacts(params.target_contacts)
        .with_depth(params.depth);
    let mut world = CardWorld::build(&params.scenario, cfg);
    world.select_all_contacts();
    let world = &world;

    let mut cells: Vec<(&'static str, ResourceDistribution, usize)> = Vec::new();
    for &k in &params.replica_counts {
        cells.push((
            "uniform",
            ResourceDistribution::UniformReplicated { replicas: k },
            k,
        ));
        cells.push((
            "clustered",
            ResourceDistribution::Clustered { replicas: k },
            k,
        ));
    }

    parallel_map(cells, move |(label, dist, k)| {
        let splitter = SeedSplitter::new(params.seed);
        let mut place_rng = splitter.stream("res-place", k as u64 ^ (label.len() as u64) << 32);
        let registry = distribute(world.network(), params.resources, dist, &mut place_rng);
        let mut query_rng = splitter.stream("res-query", k as u64);
        let mut stats = MsgStats::default();
        let mut scratch = QueryScratch::new(); // reused across the cell's queries
        let mut found = 0usize;
        let mut zone_hits = 0usize;
        let mut msgs = 0u64;
        for _ in 0..params.queries {
            let source = NodeId::from(query_rng.index(world.network().node_count()));
            let resource = ResourceId(query_rng.index(params.resources) as u32);
            let out = resource_query(
                world.network(),
                world.contact_tables(),
                &registry,
                source,
                resource,
                params.depth,
                &mut stats,
                world.now(),
                &mut scratch,
            );
            found += out.found as usize;
            zone_hits += (out.found && out.depth_used == 0) as usize;
            msgs += out.total_messages();
        }
        DistRow {
            distribution: label,
            replicas: k,
            success: found as f64 / params.queries as f64,
            msgs_per_query: msgs as f64 / params.queries as f64,
            zone_hits: zone_hits as f64 / params.queries as f64,
        }
    })
}

/// Render as Markdown.
pub fn render(params: &Params, rows: &[DistRow]) -> String {
    let headers = [
        "Distribution",
        "Replicas",
        "Success",
        "Msgs/query",
        "Zone hits",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.distribution.to_string(),
                r.replicas.to_string(),
                format!("{:.0}%", 100.0 * r.success),
                format!("{:.1}", r.msgs_per_query),
                format!("{:.0}%", 100.0 * r.zone_hits),
            ]
        })
        .collect();
    format!(
        "### Extension — resource distributions ({}, R={}, r={}, NoC={}, D={})\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        params.target_contacts,
        params.depth,
        markdown_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_improves_discovery() {
        let params = Params::quick();
        let rows = run(&params);
        assert_eq!(rows.len(), 4);
        let uni: Vec<&DistRow> = rows
            .iter()
            .filter(|r| r.distribution == "uniform")
            .collect();
        assert!(
            uni[1].success >= uni[0].success,
            "more replicas must not hurt success ({:.2} -> {:.2})",
            uni[0].success,
            uni[1].success
        );
        assert!(
            uni[1].zone_hits >= uni[0].zone_hits,
            "more replicas mean more zone-local hits"
        );
    }

    #[test]
    fn uniform_beats_clustered_at_equal_replicas() {
        let params = Params::quick();
        let rows = run(&params);
        let hi = params.replica_counts.last().copied().unwrap();
        let uni = rows
            .iter()
            .find(|r| r.distribution == "uniform" && r.replicas == hi)
            .unwrap();
        let clu = rows
            .iter()
            .find(|r| r.distribution == "clustered" && r.replicas == hi)
            .unwrap();
        assert!(
            uni.success >= clu.success,
            "uniform replicas spread coverage wider than clustered \
             (uniform {:.2} vs clustered {:.2})",
            uni.success,
            clu.success
        );
    }

    #[test]
    fn deterministic() {
        let params = Params::quick();
        let a: Vec<(f64, f64)> = run(&params)
            .iter()
            .map(|r| (r.success, r.msgs_per_query))
            .collect();
        let b: Vec<(f64, f64)> = run(&params)
            .iter()
            .map(|r| (r.success, r.msgs_per_query))
            .collect();
        assert_eq!(a, b);
    }
}

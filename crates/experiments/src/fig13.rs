//! Fig 13 — maintenance overhead and contact count over a 20 s run.
//!
//! Paper setup: N=250, 710×710 m, tx 50 m, NoC=6, R=4, r=16, D=1, t ≤ 20 s.
//! Two series: total contacts selected (slightly increasing) and
//! maintenance overhead per node (steadily decreasing — sources settle on
//! *stable* contacts, so fewer walks/recoveries are needed over time).

use crate::mobile::{per_node_series, run_mobile, total_overhead_pred};
use crate::output::markdown_table;
use card_core::CardConfig;
use net_topology::scenario::Scenario;
use sim_core::time::SimDuration;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: 250 nodes on 710×710 m).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 4).
    pub radius: u16,
    /// Maximum contact distance r (paper: 16).
    pub max_contact_distance: u16,
    /// NoC (paper: 6).
    pub target_contacts: usize,
    /// Simulated duration (paper: 20 s).
    pub duration_secs: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: Scenario::new(250, 710.0, 710.0, 50.0),
            radius: 4,
            max_contact_distance: 16,
            target_contacts: 6,
            duration_secs: 20,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(100, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 8,
            target_contacts: 3,
            duration_secs: 8,
            seed: crate::DEFAULT_SEED,
        }
    }

    /// Number of 2-second buckets.
    pub fn buckets(&self) -> usize {
        (self.duration_secs as usize).div_ceil(2)
    }
}

/// The Fig 13 series.
#[derive(Clone, Debug)]
pub struct TimeRun {
    /// Per-bucket selection+maintenance messages per node.
    pub overhead_per_node: Vec<f64>,
    /// Total live contacts at each bucket boundary (last validation round
    /// within the bucket).
    pub total_contacts: Vec<f64>,
    /// Per-bucket overhead per *live contact* — the normalized maintenance
    /// cost, which declines as sources settle on stable contacts.
    pub overhead_per_contact: Vec<f64>,
}

/// Run the experiment.
pub fn run(params: &Params) -> TimeRun {
    let cfg = CardConfig::default()
        .with_seed(params.seed)
        .with_radius(params.radius)
        .with_max_contact_distance(params.max_contact_distance)
        .with_target_contacts(params.target_contacts);
    let world = run_mobile(
        &params.scenario,
        cfg,
        SimDuration::from_secs(params.duration_secs),
    );
    let buckets = params.buckets();
    let overhead = per_node_series(&world, total_overhead_pred, buckets);

    // Sample the contacts series at each bucket boundary: the last recorded
    // value with time < (k+1)*2s.
    let bucket_w = SimDuration::from_secs(2);
    let totals: Vec<f64> = (0..buckets)
        .map(|k| {
            let deadline = sim_core::time::SimTime::ZERO + bucket_w.times(k as u64 + 1);
            world
                .contacts_series()
                .points()
                .iter()
                .rev()
                .find(|(t, _)| *t < deadline)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        })
        .collect();
    let n = params.scenario.nodes as f64;
    let overhead_per_contact = overhead
        .iter()
        .zip(&totals)
        .map(|(&oh, &c)| if c > 0.0 { oh * n / c } else { 0.0 })
        .collect();
    TimeRun {
        overhead_per_node: overhead,
        total_contacts: totals,
        overhead_per_contact,
    }
}

/// Render as Markdown.
pub fn render(params: &Params, run_result: &TimeRun) -> String {
    let headers = [
        "t (s)",
        "Total contacts selected",
        "Maintenance overhead / node",
        "Overhead / contact",
    ];
    let rows: Vec<Vec<String>> = (0..params.buckets())
        .map(|k| {
            vec![
                format!("{}", 2 * (k + 1)),
                format!("{:.0}", run_result.total_contacts[k]),
                format!("{:.1}", run_result.overhead_per_node[k]),
                format!("{:.1}", run_result.overhead_per_contact[k]),
            ]
        })
        .collect();
    format!(
        "### Fig 13 — overhead and contacts over time ({}, NoC={}, R={}, r={}, D=1)\n\n{}",
        params.scenario.label(),
        params.target_contacts,
        params.radius,
        params.max_contact_distance,
        markdown_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_contact_overhead_decreases_over_time() {
        let params = Params::quick();
        let result = run(&params);
        let k = result.overhead_per_node.len();
        assert_eq!(k, params.buckets());
        // The normalized maintenance cost falls as stable contacts
        // accumulate (Fig 13's "source nodes find more stable contacts").
        let first = result.overhead_per_contact[0];
        let last = result.overhead_per_contact[k - 1];
        assert!(
            last < first,
            "per-contact overhead should decline ({first:.1} -> {last:.1})"
        );
    }

    #[test]
    fn contacts_stay_populated() {
        let params = Params::quick();
        let result = run(&params);
        // after the first bucket, the network should hold contacts
        for (k, &c) in result.total_contacts.iter().enumerate().skip(1) {
            assert!(c > 0.0, "bucket {k} has no contacts");
        }
    }

    #[test]
    fn render_has_all_series() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        assert!(text.contains("Total contacts selected"));
        assert!(text.contains("Maintenance overhead / node"));
        assert!(text.contains("Overhead / contact"));
    }
}

//! # experiments — the paper's full evaluation, regenerated
//!
//! One module per table/figure of §IV (`docs/REPRO.md` at the repo root
//! catalogues them, with the CLI flags and output conventions).
//! Every module exposes:
//!
//! * a parameter struct whose `Default` is the paper's configuration (the
//!   figure captions), with a `quick()` constructor for fast CI/bench runs;
//! * a `run(...)` function returning structured results;
//! * a `render(...)` function producing the Markdown table the
//!   `repro` binary prints.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro table1            # Table 1
//! repro fig3 … fig15      # individual figures
//! repro smallworld        # extension: contacts as small-world shortcuts
//! repro resources         # extension: §V resource-distribution study
//! repro scale             # extension: N = 10⁴–10⁵ substrate + protocol runs
//! repro scale --nodes N   # scale runs at a chosen N (no recompile)
//! repro scale-events      # extension: event-driven vs tick-driven drive at N = 10⁵
//! repro scale-hostile     # extension: degradation under churn/partition/loss at N = 10⁵
//! repro all               # everything, paper-sized
//! repro all --quick       # everything, small sizes (seconds)
//! ```
//!
//! The scale binaries assert their fidelity/parity contracts *in-run*
//! (bit-identity between drive modes, the hint cost-only contract, the
//! hostile tier's liveness invariants) and `repro` exits non-zero when
//! any of them fails, so CI can gate on the run itself.

#![warn(missing_docs)]
pub mod ext_resources;
pub mod ext_smallworld;
pub mod fig03_04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11_12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod mobile;
pub mod output;
pub mod runner;
pub mod scale;
pub mod scale_events;
pub mod scale_hostile;
pub mod table1;

/// Default root seed for all experiments (every run is deterministic).
pub const DEFAULT_SEED: u64 = 2003;

//! Shared driver for the mobile overhead experiments (Figs 10–14).
//!
//! Each experiment: build a world, run the initial from-scratch contact
//! selection at t=0 (the burst that dominates the first reporting bucket),
//! then run the §III.C.3 maintenance loop under random-waypoint mobility
//! for the figure's duration, reading back per-2-second-bucket
//! control-message counts. Re-selection after losses is trickled
//! (`selection_walks_per_round`), which reproduces Fig 13's shape: a high
//! initial bucket declining toward the steady validation cost while the
//! total contact count creeps upward as stable contacts accumulate.
//!
//! The paper does not state node speeds or pause times; we use the standard
//! pedestrian/vehicle RWP range (uniform 0.5–5 m/s, zero pause) — §III.C.3
//! assumes "reasonable values of node velocities and validation frequency",
//! i.e. drift per validation period well below a hop length. Shapes, not
//! absolute counts, are the reproduction target.

use card_core::{CardConfig, CardWorld};
use mobility::waypoint::RandomWaypoint;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::stats::MsgKind;
use sim_core::time::SimDuration;

/// Default RWP speed range (m/s).
pub const DEFAULT_SPEED: (f64, f64) = (0.5, 5.0);

/// Build a world, select contacts at t=0, run mobile maintenance for
/// `duration`.
pub fn run_mobile(scenario: &Scenario, cfg: CardConfig, duration: SimDuration) -> CardWorld {
    let mut world = CardWorld::build(scenario, cfg);
    world.select_all_contacts();
    let mut model = RandomWaypoint::new(
        scenario.nodes,
        scenario.field(),
        DEFAULT_SPEED.0,
        DEFAULT_SPEED.1,
        0.0,
        SeedSplitter::new(cfg.seed).stream("mobility", 0),
    );
    world.run_mobile(&mut model, duration);
    world
}

/// Per-bucket control messages **per node** for kinds matching `pred`,
/// padded/truncated to exactly `buckets` entries (bucket width is the
/// world's 2 s default; bucket k covers `[2k, 2k+2)` seconds).
pub fn per_node_series(
    world: &CardWorld,
    pred: impl Fn(MsgKind) -> bool + Copy,
    buckets: usize,
) -> Vec<f64> {
    let n = world.network().node_count() as f64;
    let mut series = world.stats().series_where(pred);
    series.resize(buckets, 0);
    series.truncate(buckets);
    series.iter().map(|&c| c as f64 / n).collect()
}

/// Selection + maintenance overhead (the paper's §IV.B "total overhead").
pub fn total_overhead_pred(kind: MsgKind) -> bool {
    kind.is_selection() || kind.is_maintenance()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_run_produces_bucketed_overhead() {
        let scenario = Scenario::new(100, 350.0, 350.0, 50.0);
        let cfg = CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(8)
            .with_target_contacts(3)
            .with_seed(5);
        let world = run_mobile(&scenario, cfg, SimDuration::from_secs(6));
        let series = per_node_series(&world, total_overhead_pred, 3);
        assert_eq!(series.len(), 3);
        assert!(series[0] > 0.0, "bucket 0 contains the initial selection");
        assert!(
            series[1] > 0.0,
            "later buckets contain maintenance: {series:?}"
        );
    }

    #[test]
    fn series_pads_missing_buckets() {
        let scenario = Scenario::new(60, 300.0, 300.0, 50.0);
        let cfg = CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(8)
            .with_target_contacts(2)
            .with_seed(6);
        let world = run_mobile(&scenario, cfg, SimDuration::from_secs(2));
        let series = per_node_series(&world, total_overhead_pred, 10);
        assert_eq!(series.len(), 10);
    }
}

//! Fig 14 — the reachability-vs-overhead trade-off.
//!
//! Both curves over NoC = 0…10, normalized to their own maxima: mean
//! reachability (static analysis) and total selection+maintenance overhead
//! (a 10 s mobile run). The paper's point: reachability saturates while
//! overhead keeps climbing, leaving a "desirable region" where ≥ 50%
//! reachability is bought at moderate overhead.

use crate::mobile::{run_mobile, total_overhead_pred};
use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::CardConfig;
use net_topology::scenario::{Scenario, SCENARIO_5};
use sim_core::time::SimDuration;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// Maximum contact distance r (16, consistent with Figs 5/9).
    pub max_contact_distance: u16,
    /// NoC sweep (paper: 0–10).
    pub noc_values: Vec<usize>,
    /// Mobile-run duration for the overhead measurement.
    pub duration_secs: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 16,
            noc_values: (0..=10).collect(),
            duration_secs: 10,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(120, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 8,
            noc_values: vec![0, 2, 4, 6],
            duration_secs: 4,
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Normalized trade-off curves.
#[derive(Clone, Debug)]
pub struct TradeoffSweep {
    /// Swept NoC values.
    pub noc_values: Vec<usize>,
    /// Mean reachability (%) per NoC.
    pub reachability_pct: Vec<f64>,
    /// Total overhead per node per NoC.
    pub overhead_per_node: Vec<f64>,
    /// Reachability normalized to its maximum (the Fig 14 y-axis).
    pub reachability_norm: Vec<f64>,
    /// Overhead normalized to its maximum.
    pub overhead_norm: Vec<f64>,
}

/// Run the sweep.
pub fn run(params: &Params) -> TradeoffSweep {
    let results = parallel_map(params.noc_values.clone(), |noc| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(params.radius)
            .with_max_contact_distance(params.max_contact_distance)
            .with_target_contacts(noc);
        let world = run_mobile(
            &params.scenario,
            cfg,
            SimDuration::from_secs(params.duration_secs),
        );
        let reach = world.reachability_summary(1).mean_pct;
        let overhead = world.stats().total_where(total_overhead_pred) as f64
            / world.network().node_count() as f64;
        (reach, overhead)
    });
    let reachability_pct: Vec<f64> = results.iter().map(|r| r.0).collect();
    let overhead_per_node: Vec<f64> = results.iter().map(|r| r.1).collect();
    let rmax = reachability_pct
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let omax = overhead_per_node
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    TradeoffSweep {
        noc_values: params.noc_values.clone(),
        reachability_norm: reachability_pct.iter().map(|v| v / rmax).collect(),
        overhead_norm: overhead_per_node.iter().map(|v| v / omax).collect(),
        reachability_pct,
        overhead_per_node,
    }
}

/// Render as Markdown.
pub fn render(params: &Params, sweep: &TradeoffSweep) -> String {
    let headers = [
        "NoC",
        "Reachability (%)",
        "Overhead / node",
        "Reachability (norm)",
        "Overhead (norm)",
    ];
    let rows: Vec<Vec<String>> = sweep
        .noc_values
        .iter()
        .enumerate()
        .map(|(i, noc)| {
            vec![
                noc.to_string(),
                format!("{:.1}", sweep.reachability_pct[i]),
                format!("{:.1}", sweep.overhead_per_node[i]),
                format!("{:.2}", sweep.reachability_norm[i]),
                format!("{:.2}", sweep.overhead_norm[i]),
            ]
        })
        .collect();
    format!(
        "### Fig 14 — reachability vs overhead trade-off ({}, R={}, r={})\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        markdown_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_curves_rise_with_noc() {
        let params = Params::quick();
        let sweep = run(&params);
        let k = sweep.noc_values.len();
        assert!(sweep.reachability_pct[k - 1] > sweep.reachability_pct[0]);
        assert!(sweep.overhead_per_node[k - 1] > sweep.overhead_per_node[0]);
        // normalized curves peak at 1.0
        let rmax = sweep
            .reachability_norm
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let omax = sweep.overhead_norm.iter().cloned().fold(f64::MIN, f64::max);
        assert!((rmax - 1.0).abs() < 1e-9);
        assert!((omax - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tradeoff_exists() {
        // Reachability saturates; overhead does not: their normalized gap
        // should widen at high NoC. At minimum they must not be identical.
        let params = Params::quick();
        let sweep = run(&params);
        assert_ne!(sweep.reachability_norm, sweep.overhead_norm);
    }
}

//! Fig 10 — effect of NoC on maintenance overhead over time.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, R=3, r=10, D=1,
//! NoC ∈ {3, 4, 5, 7}, overhead (control messages) per node plotted at
//! t = 2, 4, 6, 8, 10 s. Expected shape: more contacts ⇒ more paths to
//! validate and re-select ⇒ uniformly higher overhead curves.

use crate::mobile::{per_node_series, run_mobile, total_overhead_pred};
use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::CardConfig;
use net_topology::scenario::{Scenario, SCENARIO_5};
use sim_core::time::SimDuration;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// Maximum contact distance r (paper: 10).
    pub max_contact_distance: u16,
    /// NoC sweep values (paper: 3, 4, 5, 7).
    pub noc_values: Vec<usize>,
    /// Simulated duration (paper plots 10 s).
    pub duration_secs: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 10,
            noc_values: vec![3, 4, 5, 7],
            duration_secs: 10,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(120, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 8,
            noc_values: vec![2, 4],
            duration_secs: 6,
            seed: crate::DEFAULT_SEED,
        }
    }

    /// Number of 2-second buckets.
    pub fn buckets(&self) -> usize {
        (self.duration_secs as usize).div_ceil(2)
    }
}

/// One overhead-vs-time curve per NoC.
#[derive(Clone, Debug)]
pub struct OverheadSweep {
    /// Swept NoC values.
    pub noc_values: Vec<usize>,
    /// Per-bucket overhead per node (selection+maintenance), one series
    /// per NoC value; bucket k covers [2k, 2k+2) seconds.
    pub series: Vec<Vec<f64>>,
}

/// Run the sweep.
pub fn run(params: &Params) -> OverheadSweep {
    let buckets = params.buckets();
    let series = parallel_map(params.noc_values.clone(), |noc| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(params.radius)
            .with_max_contact_distance(params.max_contact_distance)
            .with_target_contacts(noc);
        let world = run_mobile(
            &params.scenario,
            cfg,
            SimDuration::from_secs(params.duration_secs),
        );
        per_node_series(&world, total_overhead_pred, buckets)
    });
    OverheadSweep {
        noc_values: params.noc_values.clone(),
        series,
    }
}

/// Render as Markdown (rows = report times, columns = NoC values).
pub fn render(params: &Params, sweep: &OverheadSweep) -> String {
    let mut headers = vec!["t (s)".to_string()];
    headers.extend(sweep.noc_values.iter().map(|noc| format!("NoC={noc}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..params.buckets())
        .map(|k| {
            let mut row = vec![format!("{}", 2 * (k + 1))];
            row.extend(sweep.series.iter().map(|s| format!("{:.1}", s[k])));
            row
        })
        .collect();
    format!(
        "### Fig 10 — overhead/node vs time by NoC ({}, R={}, r={}, D=1)\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        markdown_table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_contacts_cost_more_overhead() {
        let params = Params::quick();
        let sweep = run(&params);
        assert_eq!(sweep.series.len(), 2);
        let total_low: f64 = sweep.series[0].iter().sum();
        let total_high: f64 = sweep.series[1].iter().sum();
        assert!(
            total_high > total_low,
            "NoC=4 overhead ({total_high:.1}) must exceed NoC=2 ({total_low:.1})"
        );
    }

    #[test]
    fn every_bucket_reported() {
        let params = Params::quick();
        let sweep = run(&params);
        for s in &sweep.series {
            assert_eq!(s.len(), params.buckets());
        }
        let text = render(&params, &sweep);
        assert!(text.contains("NoC=2") && text.contains("NoC=4"));
    }
}

//! Markdown rendering helpers shared by all experiment modules.

/// Render a Markdown table: `headers` then one row per entry.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Render a reachability histogram family as a Markdown table with one
/// column per series: rows are 5% buckets, cells are node counts.
pub fn histogram_table(bucket_edges: &[f64], series: &[(String, Vec<u64>)]) -> String {
    let mut headers: Vec<String> = vec!["Reachability ≤ (%)".to_string()];
    headers.extend(series.iter().map(|(label, _)| label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = bucket_edges
        .iter()
        .enumerate()
        .map(|(i, edge)| {
            let mut row = vec![format!("{edge:.0}")];
            row.extend(series.iter().map(|(_, counts)| counts[i].to_string()));
            row
        })
        .collect();
    markdown_table(&header_refs, &rows)
}

/// Compact one-line summary of a numeric series.
pub fn series_line(label: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{v:.1}")).collect();
    format!("{label}: [{}]", cells.join(", "))
}

/// A crude ASCII bar, handy for eyeballing distributions in the terminal.
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
        assert_eq!(lines[3], "| 3 | 4 |");
    }

    #[test]
    fn histogram_table_columns() {
        let t = histogram_table(
            &[5.0, 10.0],
            &[
                ("R=1".to_string(), vec![3, 4]),
                ("R=2".to_string(), vec![1, 2]),
            ],
        );
        assert!(t.contains("| 5 | 3 | 1 |"));
        assert!(t.contains("| 10 | 4 | 2 |"));
        assert!(t.starts_with("| Reachability ≤ (%) | R=1 | R=2 |"));
    }

    #[test]
    fn series_line_format() {
        assert_eq!(series_line("x", &[1.0, 2.25]), "x: [1.0, 2.2]");
    }

    #[test]
    fn ascii_bar_bounds() {
        assert_eq!(ascii_bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(ascii_bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(ascii_bar(1.0, 0.0, 10), "");
    }
}

//! Fig 15 — CARD vs flooding vs bordercasting.
//!
//! Paper setup: querying traffic per node for 50 queries between random
//! source/destination pairs, at N ∈ {250, 500, 1000}; CARD additionally
//! shows its contact selection + maintenance overhead as a separate series.
//! Expected shape: flooding ≫ bordercasting ≫ CARD, with the gap widening
//! with network size; flooding/bordercasting succeed on 100% of
//! (connected) queries, CARD on ~95% at D=3.
//!
//! Query pairs are drawn from the largest connected component so that the
//! baselines' "100% success" is well-defined, mirroring the paper.

use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::{CardConfig, CardWorld};
use manet_routing::flooding::flood_search;
use manet_routing::network::Network;
use manet_routing::zrp::{bordercast_search, BordercastConfig};
use mobility::waypoint::RandomWaypoint;
use net_topology::bfs::full_bfs;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::stats::{MsgKind, MsgStats};
use sim_core::time::{SimDuration, SimTime};

/// Per-size CARD tuning: the Fig 9 configurations (the paper tunes R, r and
/// NoC per network size). Bordercasting shares the same zone radius — both
/// protocols run on the identical proactive zone infrastructure.
#[derive(Clone, Debug)]
pub struct SizeCase {
    /// Topology family.
    pub scenario: Scenario,
    /// Zone/neighborhood radius shared by CARD and bordercasting.
    pub radius: u16,
    /// CARD maximum contact distance.
    pub max_contact_distance: u16,
    /// CARD NoC.
    pub target_contacts: usize,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// The network sizes to compare.
    pub cases: Vec<SizeCase>,
    /// Number of random queries (paper: 50).
    pub queries: usize,
    /// CARD depth of search (paper: D=3 → ~95% success).
    pub depth: u16,
    /// Mobile maintenance window for CARD's overhead series (seconds).
    pub overhead_window_secs: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            cases: vec![
                SizeCase {
                    scenario: Scenario::new(250, 500.0, 500.0, 50.0),
                    radius: 3,
                    max_contact_distance: 14,
                    target_contacts: 10,
                },
                SizeCase {
                    scenario: Scenario::new(500, 710.0, 710.0, 50.0),
                    radius: 5,
                    max_contact_distance: 17,
                    target_contacts: 12,
                },
                SizeCase {
                    scenario: Scenario::new(1000, 1000.0, 1000.0, 50.0),
                    radius: 6,
                    max_contact_distance: 24,
                    target_contacts: 15,
                },
            ],
            queries: 50,
            depth: 3,
            overhead_window_secs: 10,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            cases: vec![SizeCase {
                scenario: Scenario::new(150, 400.0, 400.0, 50.0),
                radius: 2,
                max_contact_distance: 10,
                target_contacts: 5,
            }],
            queries: 15,
            depth: 3,
            overhead_window_secs: 4,
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Comparison numbers for one network size.
#[derive(Clone, Debug)]
pub struct SizeResult {
    /// Number of nodes.
    pub nodes: usize,
    /// Flooding query traffic per node.
    pub flooding_per_node: f64,
    /// Bordercasting (QD1+QD2) query traffic per node.
    pub bordercast_per_node: f64,
    /// CARD query traffic per node.
    pub card_query_per_node: f64,
    /// CARD selection+maintenance overhead per node (the extra series the
    /// paper plots alongside).
    pub card_overhead_per_node: f64,
    /// Success rates over the query set.
    pub flooding_success: f64,
    /// Bordercast success rate.
    pub bordercast_success: f64,
    /// CARD success rate (paper: ~95% at D=3).
    pub card_success: f64,
}

/// Nodes of the largest connected component.
fn largest_component(net: &Network) -> Vec<NodeId> {
    let n = net.node_count();
    let mut seen = vec![false; n];
    let mut best: Vec<NodeId> = Vec::new();
    for s in NodeId::all(n) {
        if seen[s.index()] {
            continue;
        }
        let bfs = full_bfs(net.adj(), s);
        for &v in bfs.visited() {
            seen[v.index()] = true;
        }
        if bfs.visited_count() > best.len() {
            best = bfs.visited().to_vec();
        }
    }
    best
}

/// Draw `count` source≠target pairs from `pool`.
fn draw_pairs(
    pool: &[NodeId],
    count: usize,
    rng: &mut sim_core::rng::RngStream,
) -> Vec<(NodeId, NodeId)> {
    assert!(pool.len() >= 2, "need at least two connected nodes");
    (0..count)
        .map(|_| loop {
            let s = *rng.choose(pool).expect("non-empty");
            let t = *rng.choose(pool).expect("non-empty");
            if s != t {
                break (s, t);
            }
        })
        .collect()
}

/// Run the comparison for one size case.
fn run_case(case: &SizeCase, params: &Params) -> SizeResult {
    let splitter = SeedSplitter::new(params.seed);
    let net = Network::from_scenario(&case.scenario, case.radius, params.seed);
    let n = net.node_count() as f64;
    let pool = largest_component(&net);
    let mut pair_rng = splitter.stream("fig15-pairs", case.scenario.nodes as u64);
    let pairs = draw_pairs(&pool, params.queries, &mut pair_rng);

    // --- flooding ---
    let mut flood_stats = MsgStats::default();
    let mut flood_hits = 0usize;
    for &(s, t) in &pairs {
        if flood_search(net.adj(), s, t, &mut flood_stats, SimTime::ZERO).found {
            flood_hits += 1;
        }
    }

    // --- bordercasting (QD1 + QD2) ---
    let mut bc_stats = MsgStats::default();
    let mut bc_hits = 0usize;
    for &(s, t) in &pairs {
        let out = bordercast_search(
            net.adj(),
            net.tables(),
            s,
            t,
            &BordercastConfig::default(),
            &mut bc_stats,
            SimTime::ZERO,
        );
        if out.found {
            bc_hits += 1;
        }
    }

    // --- CARD: same topology (same seed ⇒ same placement) ---
    let cfg = CardConfig::default()
        .with_seed(params.seed)
        .with_radius(case.radius)
        .with_max_contact_distance(case.max_contact_distance)
        .with_target_contacts(case.target_contacts)
        .with_depth(params.depth);
    let mut world = CardWorld::build(&case.scenario, cfg);
    world.select_all_contacts();
    // Queries run against the converged architecture (fresh tables), as in
    // the paper's querying experiment.
    let mut card_hits = 0usize;
    for &(s, t) in &pairs {
        if world.query(s, t).found {
            card_hits += 1;
        }
    }
    let card_query = world
        .stats()
        .total(MsgKind::Dsq)
        .saturating_add(world.stats().total(MsgKind::DsqReply)) as f64;

    // Maintenance window under mobility — the paper's separate CARD
    // overhead series. (No queries run here, so the Dsq totals above are
    // unaffected.)
    let mut model = RandomWaypoint::new(
        case.scenario.nodes,
        case.scenario.field(),
        crate::mobile::DEFAULT_SPEED.0,
        crate::mobile::DEFAULT_SPEED.1,
        0.0,
        splitter.stream("fig15-mobility", case.scenario.nodes as u64),
    );
    world.run_mobile(
        &mut model,
        SimDuration::from_secs(params.overhead_window_secs),
    );
    let overhead = world
        .stats()
        .total_where(crate::mobile::total_overhead_pred) as f64;

    let q = params.queries as f64;
    SizeResult {
        nodes: case.scenario.nodes,
        flooding_per_node: flood_stats.total(MsgKind::Flood) as f64 / n,
        bordercast_per_node: bc_stats.total(MsgKind::Bordercast) as f64 / n,
        card_query_per_node: card_query / n,
        card_overhead_per_node: overhead / n,
        flooding_success: flood_hits as f64 / q,
        bordercast_success: bc_hits as f64 / q,
        card_success: card_hits as f64 / q,
    }
}

/// Run every size case.
pub fn run(params: &Params) -> Vec<SizeResult> {
    parallel_map(params.cases.clone(), |case| run_case(&case, params))
}

/// Render as Markdown.
pub fn render(params: &Params, results: &[SizeResult]) -> String {
    let headers = [
        "Nodes",
        "Flooding msgs/node",
        "Bordercast msgs/node",
        "CARD query msgs/node",
        "CARD sel+maint msgs/node",
        "Flood success",
        "BC success",
        "CARD success",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.1}", r.flooding_per_node),
                format!("{:.1}", r.bordercast_per_node),
                format!("{:.1}", r.card_query_per_node),
                format!("{:.1}", r.card_overhead_per_node),
                format!("{:.0}%", 100.0 * r.flooding_success),
                format!("{:.0}%", 100.0 * r.bordercast_success),
                format!("{:.0}%", 100.0 * r.card_success),
            ]
        })
        .collect();
    format!(
        "### Fig 15 — querying traffic: CARD vs flooding vs bordercasting ({} queries, D={})\n\n{}",
        params.queries,
        params.depth,
        markdown_table(&headers, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_beats_baselines_on_query_traffic() {
        let params = Params::quick();
        let results = run(&params);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert!(
            r.flooding_per_node > r.bordercast_per_node,
            "flooding ({:.1}) must exceed bordercasting ({:.1})",
            r.flooding_per_node,
            r.bordercast_per_node
        );
        assert!(
            r.bordercast_per_node > r.card_query_per_node,
            "bordercasting ({:.1}) must exceed CARD ({:.1})",
            r.bordercast_per_node,
            r.card_query_per_node
        );
    }

    #[test]
    fn success_rates_ordered_as_paper() {
        let params = Params::quick();
        let r = &run(&params)[0];
        assert_eq!(
            r.flooding_success, 1.0,
            "flooding always succeeds in-component"
        );
        assert_eq!(
            r.bordercast_success, 1.0,
            "bordercasting always succeeds in-component"
        );
        assert!(
            r.card_success >= 0.6,
            "CARD should find most targets at D=3, got {:.0}%",
            100.0 * r.card_success
        );
    }

    #[test]
    fn largest_component_is_connected_pool() {
        let params = Params::quick();
        let net = Network::from_scenario(&params.cases[0].scenario, 2, params.seed);
        let pool = largest_component(&net);
        assert!(pool.len() >= 2);
        let bfs = full_bfs(net.adj(), pool[0]);
        for &v in &pool {
            assert!(bfs.reached(v), "pool member {v} not connected to pool head");
        }
    }
}

//! Fig 7 — effect of NoC on the reachability distribution.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, R=3, r=10, D=1,
//! NoC = 0, 2, …, 12. Expected shape: reachability rises sharply with the
//! first few contacts, then saturates around NoC ≈ 6 — the R=3/r=10
//! annulus only fits so many non-overlapping contact neighborhoods.

use crate::output::histogram_table;
use crate::runner::parallel_map;
use card_core::reachability::REACH_BUCKET_PCT;
use card_core::{CardConfig, CardWorld};
use net_topology::scenario::{Scenario, SCENARIO_5};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// Maximum contact distance r (paper: 10).
    pub max_contact_distance: u16,
    /// NoC sweep values (paper: 0, 2, …, 12).
    pub noc_values: Vec<usize>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 10,
            noc_values: (0..=6).map(|k| 2 * k).collect(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 8,
            noc_values: vec![0, 2, 4, 6],
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Results of the NoC sweep.
#[derive(Clone, Debug)]
pub struct NocSweep {
    /// Swept NoC values.
    pub noc_values: Vec<usize>,
    /// 5%-bucket histograms per NoC.
    pub histograms: Vec<Vec<u64>>,
    /// Mean reachability per NoC.
    pub mean_pct: Vec<f64>,
    /// Mean contacts actually selected per NoC (saturation).
    pub mean_contacts: Vec<f64>,
}

/// Run the NoC sweep.
pub fn run(params: &Params) -> NocSweep {
    let results = parallel_map(params.noc_values.clone(), |noc| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(params.radius)
            .with_max_contact_distance(params.max_contact_distance)
            .with_target_contacts(noc);
        let mut world = CardWorld::build(&params.scenario, cfg);
        world.select_all_contacts();
        let summary = world.reachability_summary(1);
        (
            summary.histogram.counts().to_vec(),
            summary.mean_pct,
            world.mean_contacts(),
        )
    });
    NocSweep {
        noc_values: params.noc_values.clone(),
        histograms: results.iter().map(|r| r.0.clone()).collect(),
        mean_pct: results.iter().map(|r| r.1).collect(),
        mean_contacts: results.iter().map(|r| r.2).collect(),
    }
}

/// Render as Markdown.
pub fn render(params: &Params, sweep: &NocSweep) -> String {
    let edges: Vec<f64> = (1..=20).map(|i| i as f64 * REACH_BUCKET_PCT).collect();
    let series: Vec<(String, Vec<u64>)> = sweep
        .noc_values
        .iter()
        .zip(&sweep.histograms)
        .map(|(noc, h)| (format!("NoC={noc}"), h.clone()))
        .collect();
    let mut out = format!(
        "### Fig 7 — reachability distribution vs NoC ({}, R={}, r={}, D=1)\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        histogram_table(&edges, &series)
    );
    out.push_str("\nMean reachability %: ");
    for (noc, m) in sweep.noc_values.iter().zip(&sweep.mean_pct) {
        out.push_str(&format!("NoC={noc}: {m:.1}  "));
    }
    out.push_str("\nMean contacts: ");
    for (noc, c) in sweep.noc_values.iter().zip(&sweep.mean_contacts) {
        out.push_str(&format!("NoC={noc}: {c:.2}  "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_rises_then_saturates() {
        let params = Params::quick();
        let sweep = run(&params);
        // NoC=0: bare neighborhood
        assert_eq!(sweep.mean_contacts[0], 0.0);
        // first contacts buy the most reachability
        assert!(
            sweep.mean_pct[1] > sweep.mean_pct[0] + 2.0,
            "NoC=2 ({:.1}%) must clearly beat NoC=0 ({:.1}%)",
            sweep.mean_pct[1],
            sweep.mean_pct[0]
        );
        // saturation: contacts actually selected stop tracking NoC
        let last = sweep.noc_values.len() - 1;
        assert!(
            sweep.mean_contacts[last] < sweep.noc_values[last] as f64,
            "selection must saturate below the requested NoC"
        );
        // monotone non-decreasing means (within noise)
        for w in sweep.mean_pct.windows(2) {
            assert!(w[1] >= w[0] - 1.0, "reachability dropped: {w:?}");
        }
    }

    #[test]
    fn noc_zero_distribution_is_neighborhood_only() {
        let params = Params::quick();
        let sweep = run(&params);
        // with R=2 on a 150-node network, neighborhoods stay under ~30%
        let low_buckets: u64 = sweep.histograms[0][..6].iter().sum();
        assert_eq!(low_buckets, params.scenario.nodes as u64);
    }
}

//! Fig 8 — effect of depth of search D on the reachability distribution.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, R=3, NoC=10, r=10, D = 1, 2, 3.
//! Expected shape: reachability climbs sharply with D — the contact tree
//! ("contacts of contacts") is what makes CARD scale. Contacts are selected
//! once; D is purely a query/analysis parameter, so a single world serves
//! all three curves.

use crate::output::histogram_table;
use crate::runner::parallel_map;
use card_core::reachability::REACH_BUCKET_PCT;
use card_core::{CardConfig, CardWorld};
use net_topology::scenario::{Scenario, SCENARIO_5};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// Maximum contact distance r (paper: 10).
    pub max_contact_distance: u16,
    /// NoC (paper: 10).
    pub target_contacts: usize,
    /// Depth values (paper: 1–3).
    pub depth_values: Vec<u16>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 10,
            target_contacts: 10,
            depth_values: vec![1, 2, 3],
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 8,
            target_contacts: 4,
            depth_values: vec![1, 2, 3],
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// Results of the depth sweep.
#[derive(Clone, Debug)]
pub struct DepthSweep {
    /// Swept depth values.
    pub depth_values: Vec<u16>,
    /// 5%-bucket histograms per depth.
    pub histograms: Vec<Vec<u64>>,
    /// Mean reachability per depth.
    pub mean_pct: Vec<f64>,
}

/// Run the depth sweep (one selection pass, D varied analytically).
pub fn run(params: &Params) -> DepthSweep {
    let cfg = CardConfig::default()
        .with_seed(params.seed)
        .with_radius(params.radius)
        .with_max_contact_distance(params.max_contact_distance)
        .with_target_contacts(params.target_contacts);
    let mut world = CardWorld::build(&params.scenario, cfg);
    world.select_all_contacts();

    // Reachability summaries at different depths are independent reads.
    let world_ref = &world;
    let results = parallel_map(params.depth_values.clone(), move |d| {
        let summary = world_ref.reachability_summary(d);
        (summary.histogram.counts().to_vec(), summary.mean_pct)
    });
    DepthSweep {
        depth_values: params.depth_values.clone(),
        histograms: results.iter().map(|r| r.0.clone()).collect(),
        mean_pct: results.iter().map(|r| r.1).collect(),
    }
}

/// Render as Markdown.
pub fn render(params: &Params, sweep: &DepthSweep) -> String {
    let edges: Vec<f64> = (1..=20).map(|i| i as f64 * REACH_BUCKET_PCT).collect();
    let series: Vec<(String, Vec<u64>)> = sweep
        .depth_values
        .iter()
        .zip(&sweep.histograms)
        .map(|(d, h)| (format!("D={d}"), h.clone()))
        .collect();
    let mut out = format!(
        "### Fig 8 — reachability distribution vs D ({}, R={}, r={}, NoC={})\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        params.target_contacts,
        histogram_table(&edges, &series)
    );
    out.push_str("\nMean reachability %: ");
    for (d, m) in sweep.depth_values.iter().zip(&sweep.mean_pct) {
        out.push_str(&format!("D={d}: {m:.1}  "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachability_climbs_sharply_with_depth() {
        let sweep = run(&Params::quick());
        assert_eq!(sweep.mean_pct.len(), 3);
        assert!(
            sweep.mean_pct[1] > sweep.mean_pct[0] * 1.3,
            "D=2 ({:.1}%) should be well above D=1 ({:.1}%)",
            sweep.mean_pct[1],
            sweep.mean_pct[0]
        );
        assert!(
            sweep.mean_pct[2] >= sweep.mean_pct[1],
            "D=3 must not lose reachability"
        );
    }

    #[test]
    fn histograms_cover_all_nodes() {
        let params = Params::quick();
        let sweep = run(&params);
        for h in &sweep.histograms {
            assert_eq!(h.iter().sum::<u64>(), params.scenario.nodes as u64);
        }
    }

    #[test]
    fn render_lists_depths() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        assert!(text.contains("D=1") && text.contains("D=2") && text.contains("D=3"));
    }
}

//! Figs 11 & 12 — effect of r on total and backtracking overhead over time.
//!
//! Paper setup: N=500, 710×710 m, tx 50 m, NoC=5, R=3, D=1,
//! r ∈ {8, 9, 10, 12, 15}. The counter-intuitive headline (§IV.B.2):
//! total overhead *decreases* with larger r, because a wider annulus makes
//! CSQ walks succeed sooner — the collapse in backtracking (Fig 12)
//! outweighs the longer validation paths. Both figures come from the same
//! runs: Fig 11 plots selection+maintenance, Fig 12 backtracking only.

use crate::mobile::{per_node_series, run_mobile, total_overhead_pred};
use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::CardConfig;
use net_topology::scenario::{Scenario, SCENARIO_5};
use sim_core::stats::MsgKind;
use sim_core::time::SimDuration;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// NoC (paper: 5).
    pub target_contacts: usize,
    /// r sweep values (paper: 8, 9, 10, 12, 15).
    pub r_values: Vec<u16>,
    /// Simulated duration (paper plots 10 s).
    pub duration_secs: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            target_contacts: 5,
            r_values: vec![8, 9, 10, 12, 15],
            duration_secs: 10,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Reduced configuration for benches/CI.
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(120, 400.0, 400.0, 50.0),
            radius: 2,
            target_contacts: 3,
            r_values: vec![5, 8],
            duration_secs: 6,
            seed: crate::DEFAULT_SEED,
        }
    }

    /// Number of 2-second buckets.
    pub fn buckets(&self) -> usize {
        (self.duration_secs as usize).div_ceil(2)
    }
}

/// Total-overhead and backtracking series per swept r.
#[derive(Clone, Debug)]
pub struct ROverheadSweep {
    /// Swept r values.
    pub r_values: Vec<u16>,
    /// Fig 11: per-bucket selection+maintenance messages per node.
    pub total_series: Vec<Vec<f64>>,
    /// Fig 12: per-bucket backtracking messages per node.
    pub backtrack_series: Vec<Vec<f64>>,
}

/// Run the sweep.
pub fn run(params: &Params) -> ROverheadSweep {
    let buckets = params.buckets();
    let results = parallel_map(params.r_values.clone(), |r| {
        let cfg = CardConfig::default()
            .with_seed(params.seed)
            .with_radius(params.radius)
            .with_max_contact_distance(r)
            .with_target_contacts(params.target_contacts);
        let world = run_mobile(
            &params.scenario,
            cfg,
            SimDuration::from_secs(params.duration_secs),
        );
        (
            per_node_series(&world, total_overhead_pred, buckets),
            per_node_series(&world, |k| k == MsgKind::CsqBacktrack, buckets),
        )
    });
    ROverheadSweep {
        r_values: params.r_values.clone(),
        total_series: results.iter().map(|r| r.0.clone()).collect(),
        backtrack_series: results.iter().map(|r| r.1.clone()).collect(),
    }
}

fn render_one(title: &str, params: &Params, r_values: &[u16], series: &[Vec<f64>]) -> String {
    let mut headers = vec!["t (s)".to_string()];
    headers.extend(r_values.iter().map(|r| format!("r={r}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..params.buckets())
        .map(|k| {
            let mut row = vec![format!("{}", 2 * (k + 1))];
            row.extend(series.iter().map(|s| format!("{:.1}", s[k])));
            row
        })
        .collect();
    format!("{title}\n\n{}", markdown_table(&header_refs, &rows))
}

/// Render both figures.
pub fn render(params: &Params, sweep: &ROverheadSweep) -> String {
    let f11 = render_one(
        &format!(
            "### Fig 11 — total overhead/node vs time by r ({}, NoC={}, R={}, D=1)",
            params.scenario.label(),
            params.target_contacts,
            params.radius
        ),
        params,
        &sweep.r_values,
        &sweep.total_series,
    );
    let f12 = render_one(
        &format!(
            "### Fig 12 — backtracking overhead/node vs time by r ({}, NoC={}, R={}, D=1)",
            params.scenario.label(),
            params.target_contacts,
            params.radius
        ),
        params,
        &sweep.r_values,
        &sweep.backtrack_series,
    );
    format!("{f11}\n{f12}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtracking_drops_with_wider_annulus() {
        let params = Params::quick();
        let sweep = run(&params);
        let bt_narrow: f64 = sweep.backtrack_series[0].iter().sum();
        let bt_wide: f64 = sweep.backtrack_series[1].iter().sum();
        assert!(
            bt_wide < bt_narrow,
            "r={} backtracking ({bt_wide:.1}) must be below r={} ({bt_narrow:.1})",
            params.r_values[1],
            params.r_values[0]
        );
    }

    #[test]
    fn total_overhead_follows_backtracking_down() {
        // The Fig 11 headline: total overhead decreases with r because the
        // backtracking savings dominate the longer paths.
        let params = Params::quick();
        let sweep = run(&params);
        let t_narrow: f64 = sweep.total_series[0].iter().sum();
        let t_wide: f64 = sweep.total_series[1].iter().sum();
        assert!(
            t_wide < t_narrow * 1.1,
            "total overhead should not grow materially with r \
             (r={}: {t_wide:.1} vs r={}: {t_narrow:.1})",
            params.r_values[1],
            params.r_values[0]
        );
    }

    #[test]
    fn render_emits_both_figures() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        assert!(text.contains("Fig 11"));
        assert!(text.contains("Fig 12"));
    }
}

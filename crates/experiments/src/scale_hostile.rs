//! Protocol degradation under hostile regimes (`repro scale-hostile`).
//!
//! The fault plane (`sim_core::faults`) makes hostility a first-class,
//! replayable input: seeded node crashes with rejoins, a region-scoped
//! partition window over a frozen x-cut, and per-message drop/delay on
//! the cross-shard deposit plane. This tier measures what the hardening
//! layer — contact tombstones, per-contact validation retry timers,
//! hinted-probe fallback and capped query retries — buys at scale:
//! **resolution success, messages per query and hint hit-rate as
//! functions of churn rate and partition fraction** at N = 10⁵
//! (scenario-5 density, like the other scale tiers).
//!
//! Every cell of the (churn × partition) grid branches from one prepared
//! world (`CardWorld` is `Clone`), arms a fresh [`FaultPlan`] and drives
//! the same round/sweep cadence as the calm baseline row, so the deltas
//! are attributable to the fault regime alone. Two liveness invariants
//! are asserted **in-run** and surfaced per row:
//!
//! * no tombstoned contact survives past its TTL (the world counts a
//!   violation before each round's tombstone decay);
//! * tombstoned and rejoined nodes stay resident in their spatial-grid
//!   cells (the targeted release audit runs on every fault event).
//!
//! [`passed`] folds those invariants over the report; the `repro` binary
//! exits non-zero when it returns `false`, so CI's chaos smoke run gates
//! on them.
//!
//! Run from the CLI with `repro scale-hostile [--quick] [--nodes N]`.

use crate::output::markdown_table;
use crate::scale::scaled_scenario;
use card_core::{CardConfig, CardWorld, RetryStats};
use net_topology::node::NodeId;
use sim_core::faults::{FaultConfig, FaultPlan, PartitionWindow};
use sim_core::rng::SeedSplitter;

/// Query escalation depth of the hostile sweeps.
pub const QUERY_DEPTH: u16 = 3;

/// Parameters of the scale-hostile tier.
#[derive(Clone, Debug)]
pub struct Params {
    /// Node counts to run (each at scenario-5 density).
    pub nodes: Vec<usize>,
    /// Validation rounds each cell drives (one query sweep per round).
    pub rounds: u32,
    /// Query pairs swept per round.
    pub queries_per_round: usize,
    /// Churn-rate axis of the grid (fraction of the population crashed
    /// over the run).
    pub churn_rates: Vec<f64>,
    /// Partition-fraction axis (`0` = no partition window).
    pub partition_fractions: Vec<f64>,
    /// Per-message drop probability on the deposit plane.
    pub drop_rate: f64,
    /// Per-message one-exchange delay probability.
    pub delay_rate: f64,
    /// Rounds a crashed node stays down before rejoining.
    pub rejoin_after: u32,
    /// Zone radius R.
    pub radius: u16,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nodes: vec![100_000],
            rounds: 6,
            queries_per_round: 384,
            churn_rates: vec![0.05, 0.2],
            partition_fractions: vec![0.0, 0.5],
            drop_rate: 0.01,
            delay_rate: 0.01,
            rejoin_after: 2,
            radius: 2,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Small sizes for CI smoke runs.
    pub fn quick() -> Self {
        Params {
            nodes: vec![2_000],
            rounds: 4,
            queries_per_round: 128,
            churn_rates: vec![0.1],
            partition_fractions: vec![0.0, 0.5],
            ..Params::default()
        }
    }
}

/// The protocol configuration of a hostile run (hints on: the tier
/// reports cache degradation too).
pub fn protocol_config(p: &Params) -> CardConfig {
    CardConfig::default()
        .with_radius(p.radius)
        .with_max_contact_distance(4 * p.radius)
        .with_target_contacts(4)
        .with_depth(QUERY_DEPTH)
        .with_hints(true)
        .with_seed(p.seed)
}

/// One cell of the degradation grid (`churn == 0 && fraction == 0` with
/// zero message loss is the calm baseline row).
#[derive(Clone, Debug)]
pub struct DegradationRow {
    /// Nodes in the scenario.
    pub n: usize,
    /// Churn rate of this cell.
    pub churn: f64,
    /// Partition fraction of this cell (`0` = no window).
    pub fraction: f64,
    /// Queries issued over the run.
    pub queries: usize,
    /// Fraction of them that resolved, in `[0, 1]`.
    pub success: f64,
    /// Mean protocol messages (DSQ + replies) per query.
    pub msgs_per_query: f64,
    /// Hint-cache hit rate over the run.
    pub hint_hit_rate: f64,
    /// Crash events applied.
    pub crashes: u64,
    /// Rejoin events applied.
    pub rejoins: u64,
    /// Nodes still down when the run ended.
    pub down_end: usize,
    /// Query-retry counters (scheduled/retried/recovered/abandoned).
    pub retry: RetryStats,
    /// Deposits dropped by the fault plane.
    pub dropped: u64,
    /// Deposits delayed by one exchange.
    pub delayed: u64,
    /// Tombstones seen past their TTL (must be 0).
    pub liveness_violations: u64,
    /// Grid-residency violations on tombstoned/rejoined nodes (must be 0).
    pub grid_audit_violations: u64,
}

/// The degradation grid of one `repro scale-hostile` invocation: the calm
/// baseline first, then one row per (N, churn, fraction) cell.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// All measured rows, calm baselines first per N.
    pub rows: Vec<DegradationRow>,
}

fn workload(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = SeedSplitter::new(seed).stream("scale-hostile-workload", 0);
    (0..count)
        .map(|_| (NodeId::from(rng.index(n)), NodeId::from(rng.index(n))))
        .collect()
}

/// Drive one cell: `rounds` validation rounds, one query sweep per round.
fn run_cell(
    mut world: CardWorld,
    plan: Option<FaultPlan>,
    p: &Params,
    churn: f64,
    fraction: f64,
) -> DegradationRow {
    let n = world.network().node_count();
    if let Some(plan) = plan {
        world.enable_faults(plan);
    }
    let pairs = workload(n, p.queries_per_round, p.seed ^ 0x4057);
    let mut queries = 0usize;
    let mut found = 0usize;
    let mut msgs = 0u64;
    for _ in 0..p.rounds {
        world.validation_round();
        for o in world.query_all(&pairs) {
            queries += 1;
            found += o.found as usize;
            msgs += o.query_msgs + o.reply_msgs;
        }
        // The in-run liveness invariant: the world counts any tombstone
        // older than its TTL *before* decaying it, so a violation here is
        // a hardening bug, not a fault of the regime.
        assert_eq!(
            world.fault_report().liveness_violations,
            0,
            "a tombstoned contact survived past its TTL"
        );
    }
    let report = world.fault_report();
    let ps = world.plane_stats();
    DegradationRow {
        n,
        churn,
        fraction,
        queries,
        success: found as f64 / queries.max(1) as f64,
        msgs_per_query: msgs as f64 / queries.max(1) as f64,
        hint_hit_rate: world.hint_stats().hit_rate(),
        crashes: report.crashes,
        rejoins: report.rejoins,
        down_end: report.down_now,
        retry: report.retry.clone(),
        dropped: ps.dropped,
        delayed: ps.delayed,
        liveness_violations: report.liveness_violations,
        grid_audit_violations: report.grid_audit_violations,
    }
}

/// Run the full grid: per N one calm baseline, then every
/// (churn, fraction) cell branched from the same prepared world.
pub fn run(p: &Params) -> DegradationReport {
    let mut rows = Vec::new();
    for &n in &p.nodes {
        let scenario = scaled_scenario(n);
        let mut base = CardWorld::build(&scenario, protocol_config(p));
        base.select_all_contacts();
        rows.push(run_cell(base.clone(), None, p, 0.0, 0.0));
        for &churn in &p.churn_rates {
            for &fraction in &p.partition_fractions {
                let cfg = FaultConfig {
                    churn_rate: churn,
                    rejoin_after: p.rejoin_after,
                    partition: (fraction > 0.0).then_some(PartitionWindow {
                        start_round: 1,
                        end_round: 1 + (p.rounds / 2).max(1),
                        fraction,
                    }),
                    drop_rate: p.drop_rate,
                    delay_rate: p.delay_rate,
                    rounds: p.rounds,
                };
                let plan = FaultPlan::generate(&cfg, n, p.seed ^ 0xfa17);
                rows.push(run_cell(base.clone(), Some(plan), p, churn, fraction));
            }
        }
    }
    DegradationReport { rows }
}

/// The tier's pass/fail verdict: every row kept both in-run liveness
/// invariants. The `repro` binary exits non-zero when this is `false`.
pub fn passed(report: &DegradationReport) -> bool {
    report
        .rows
        .iter()
        .all(|r| r.liveness_violations == 0 && r.grid_audit_violations == 0)
}

/// Render the degradation grid as a Markdown table.
pub fn render(p: &Params, report: &DegradationReport) -> String {
    let headers = [
        "N",
        "Churn",
        "Partition",
        "Success %",
        "Msgs/query",
        "Hint hit %",
        "Crash/rejoin",
        "Down end",
        "Retry s/r/rec/ab",
        "Plane drop/delay",
        "Liveness",
    ];
    let body: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                if r.churn == 0.0 && r.fraction == 0.0 {
                    "calm".to_string()
                } else {
                    format!("{:.0}%", 100.0 * r.churn)
                },
                if r.fraction == 0.0 {
                    "-".to_string()
                } else {
                    format!("{:.0}%", 100.0 * r.fraction)
                },
                format!("{:.1}%", 100.0 * r.success),
                format!("{:.1}", r.msgs_per_query),
                format!("{:.1}%", 100.0 * r.hint_hit_rate),
                format!("{}/{}", r.crashes, r.rejoins),
                r.down_end.to_string(),
                format!(
                    "{}/{}/{}/{}",
                    r.retry.scheduled, r.retry.retried, r.retry.recovered, r.retry.abandoned
                ),
                format!("{}/{}", r.dropped, r.delayed),
                if r.liveness_violations == 0 && r.grid_audit_violations == 0 {
                    "ok".to_string()
                } else {
                    format!("{}+{}", r.liveness_violations, r.grid_audit_violations)
                },
            ]
        })
        .collect();
    format!(
        "### Scale hostile — degradation under churn × partition at scenario-5 density \
         ({} rounds × {} queries/round, plane drop {:.0}% + delay {:.0}%, rejoin after {} rounds; \
         tombstone-TTL and grid-residency liveness asserted in-run)\n\n{}",
        p.rounds,
        p.queries_per_round,
        100.0 * p.drop_rate,
        100.0 * p.delay_rate,
        p.rejoin_after,
        markdown_table(&headers, &body),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            nodes: vec![400],
            rounds: 3,
            queries_per_round: 48,
            churn_rates: vec![0.15],
            partition_fractions: vec![0.0, 0.5],
            ..Params::default()
        }
    }

    #[test]
    fn grid_runs_calm_first_and_passes_liveness() {
        let p = tiny();
        let report = run(&p);
        // 1 calm + 1 churn × 2 fractions
        assert_eq!(report.rows.len(), 3);
        let calm = &report.rows[0];
        assert_eq!((calm.churn, calm.fraction), (0.0, 0.0));
        assert_eq!(calm.crashes, 0);
        assert_eq!((calm.dropped, calm.delayed), (0, 0));
        assert!(calm.success > 0.0, "calm world resolves something");
        for r in &report.rows[1..] {
            assert!(r.crashes > 0, "a 15% churn plan must crash someone");
            assert_eq!(r.queries, calm.queries);
        }
        assert!(passed(&report));
    }

    #[test]
    fn hostile_cells_degrade_but_keep_invariants() {
        let report = run(&tiny());
        let calm = &report.rows[0];
        let partitioned = &report.rows[2];
        assert!(
            partitioned.success <= calm.success + 1e-9,
            "a half-field partition cannot improve resolution \
             ({} vs calm {})",
            partitioned.success,
            calm.success
        );
        for r in &report.rows {
            assert_eq!(r.liveness_violations, 0);
            assert_eq!(r.grid_audit_violations, 0);
        }
    }

    #[test]
    fn render_mentions_every_column() {
        let p = tiny();
        let report = run(&p);
        let text = render(&p, &report);
        assert!(text.contains("calm"));
        assert!(text.contains("Success %"));
        assert!(text.contains("Msgs/query"));
        assert!(text.contains("Hint hit %"));
        assert!(text.contains("Retry s/r/rec/ab"));
        assert!(text.contains("Plane drop/delay"));
        assert!(text.contains("liveness asserted in-run"));
    }
}

//! Table 1 — topology statistics of the eight simulation scenarios.
//!
//! Paper columns: number of links, node degree, network diameter, average
//! hops. Our topologies are fresh random draws, so values match in
//! magnitude, not digit-for-digit; the paper's numbers are carried along
//! for side-by-side comparison. Sparse scenarios (3 in particular) are
//! disconnected — diameter/avg-hops are over connected pairs, and we report
//! the component structure the paper omits.

use crate::output::markdown_table;
use crate::runner::parallel_map;
use net_topology::metrics::TopologyMetrics;
use net_topology::scenario::{Scenario, TABLE1_SCENARIOS};

/// Paper-reported row values (links, degree, diameter, avg hops).
pub const PAPER_ROWS: [(f64, f64, u16, f64); 8] = [
    (837.0, 6.75, 23, 9.378),
    (632.0, 5.223, 25, 9.614),
    (284.0, 2.57, 13, 3.76),
    (702.0, 4.32, 20, 5.8744),
    (1854.0, 7.416, 29, 11.641),
    (3564.0, 14.184, 17, 7.06),
    (8019.0, 16.038, 24, 8.75),
    (4062.0, 8.156, 37, 14.33),
];

/// One measured row.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// The scenario parameters.
    pub scenario: Scenario,
    /// Measured metrics for our random draw.
    pub metrics: TopologyMetrics,
}

/// Instantiate every Table 1 scenario with `seed` and measure it.
pub fn run(seed: u64) -> Vec<Table1Row> {
    parallel_map(TABLE1_SCENARIOS.to_vec(), |scenario| {
        let (_, adj) = scenario.instantiate(seed);
        Table1Row {
            scenario,
            metrics: TopologyMetrics::compute(&adj),
        }
    })
}

/// Render measured-vs-paper as a Markdown table.
pub fn render(rows: &[Table1Row]) -> String {
    let headers = [
        "#",
        "Nodes",
        "Area",
        "Tx",
        "Links (ours/paper)",
        "Degree (ours/paper)",
        "Diameter (ours/paper)",
        "Avg hops (ours/paper)",
        "Components",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let m = &row.metrics;
            let s = &row.scenario;
            let p = PAPER_ROWS[i];
            vec![
                (i + 1).to_string(),
                s.nodes.to_string(),
                format!("{:.0}x{:.0}", s.width, s.height),
                format!("{:.0}", s.tx_range),
                format!("{} / {:.0}", m.links, p.0),
                format!("{:.2} / {:.2}", m.avg_degree, p.1),
                format!("{} / {}", m.diameter, p.2),
                format!("{:.2} / {:.2}", m.avg_hops, p.3),
                m.components.to_string(),
            ]
        })
        .collect();
    format!(
        "### Table 1 — scenario topology statistics\n\n{}",
        markdown_table(&headers, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_eight_rows() {
        let rows = run(1);
        assert_eq!(rows.len(), 8);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.metrics.nodes, TABLE1_SCENARIOS[i].nodes);
        }
    }

    #[test]
    fn magnitudes_track_paper() {
        let rows = run(1);
        for (i, row) in rows.iter().enumerate() {
            let (paper_links, paper_degree, ..) = PAPER_ROWS[i];
            let links_ratio = row.metrics.links as f64 / paper_links;
            assert!(
                (0.5..2.0).contains(&links_ratio),
                "scenario {}: links {} vs paper {paper_links}",
                i + 1,
                row.metrics.links
            );
            let degree_ratio = row.metrics.avg_degree / paper_degree;
            assert!(
                (0.5..2.0).contains(&degree_ratio),
                "scenario {}: degree {:.2} vs paper {paper_degree}",
                i + 1,
                row.metrics.avg_degree
            );
        }
    }

    #[test]
    fn denser_tx_means_more_links() {
        // scenarios 4/5/6 share N and area, tx 30/50/70
        let rows = run(2);
        assert!(rows[3].metrics.links < rows[4].metrics.links);
        assert!(rows[4].metrics.links < rows[5].metrics.links);
    }

    #[test]
    fn render_contains_every_scenario() {
        let rows = run(1);
        let text = render(&rows);
        assert!(text.contains("710x710"));
        assert!(text.contains("1000x1000"));
        assert_eq!(text.matches('\n').count(), 1 + 1 + 2 + 8); // title + blank + header/sep + 8 rows
    }
}

//! Event-driven vs tick-driven pipeline at scale (`repro scale-events`).
//!
//! The event core ([`card_core::events::EventDriver`]) promises two things:
//! *fidelity* — at matching virtual instants the event-driven world is
//! bit-identical to the tick-synchronous reference — and *speed* — in
//! sparse-motion regimes, where whole regions dwell through long still
//! windows, virtual time advances much faster per wall second because
//! quiescent regions sleep instead of ticking. This tier measures both at
//! N = 10⁵ (scenario-5 density, like the other scale tiers):
//!
//! * **dense motion** — every node walks every tick (no quiescent
//!   windows), so the event loop degenerates to the tick loop and the
//!   columns demonstrate parity: same refresh count, zero skipped ticks,
//!   wall time within noise of the tick driver;
//! * **sparse motion** — a heavy-dwell population (pause probability
//!   0.9999, long dwell epochs) partitioned into
//!   small mobility regions, so most regions are fully paused at any
//!   instant and the event loop skips their wake-ups wholesale. The
//!   regime models a quiescent service-style deployment, so it runs a
//!   service-style maintenance cadence too: a 3× longer horizon with the
//!   contact-validation period stretched to match (one round per
//!   horizon) — periodic validation is identical protocol work in both
//!   columns, so a tick-rate cadence would only flatten the comparison
//!   the tier exists to make. The headline column is the virtual-time
//!   advance rate (virtual seconds per wall second) against the tick
//!   driver's — the sparse regime targets a ≥ 5× speed-up at equal
//!   fidelity.
//!
//! Every run carries a live workload — query arrivals plus
//! [`STANDING_SUBSCRIPTIONS`] standing subscriptions that resolve, break
//! under churn and re-resolve — and both drivers execute it at identical
//! virtual instants. Fidelity is *asserted in-run*: after both drives the
//! canonical CSR adjacency, the bucketed message series, the maintenance
//! totals and the full standing-query state must be equal, or the tier
//! panics. The table's `events/s` column is delivered events per wall
//! second; `virt×` is virtual seconds advanced per wall second.
//!
//! Run from the CLI with `repro scale-events`, overriding node counts
//! with `--nodes N` — no recompile needed.

use crate::output::markdown_table;
use crate::scale::scaled_scenario;
use card_core::{Arrival, ArrivalKind, CardConfig, CardWorld, DriveMode, EventDriver};
use mobility::walk::RandomWalk;
use mobility::RegionalMobility;
use net_topology::node::NodeId;
use net_topology::scenario::Scenario;
use sim_core::rng::SeedSplitter;
use sim_core::time::SimDuration;
use std::time::Instant;

/// Nodes per mobility region. Small regions make quiescent windows long:
/// a region sleeps until its *earliest* dwell expiry, so the fewer nodes
/// share a region, the further that minimum sits from now.
pub const REGION_NODES: usize = 32;

/// Standing subscriptions registered by each run's workload.
pub const STANDING_SUBSCRIPTIONS: usize = 32;

/// One-shot query arrivals in each run's workload.
pub const QUERY_ARRIVALS: usize = 96;

/// Motion regime of one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MotionProfile {
    /// Every node walks every tick: zero quiescent windows, the parity
    /// case for the event loop.
    Dense,
    /// Heavy dwell: at any instant almost every region is fully paused
    /// and the event loop sleeps through its still window.
    Sparse,
}

impl MotionProfile {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MotionProfile::Dense => "dense",
            MotionProfile::Sparse => "sparse",
        }
    }

    /// Per-epoch pause probability of the dwell walk.
    fn pause_prob(self) -> f64 {
        match self {
            MotionProfile::Dense => 0.0,
            MotionProfile::Sparse => 0.9999,
        }
    }

    /// Heading/dwell epoch length (seconds). Sparse dwells are long, so
    /// fully-paused regions yield multi-second quiescent windows.
    fn epoch_secs(self) -> f64 {
        match self {
            MotionProfile::Dense => 10.0,
            MotionProfile::Sparse => 60.0,
        }
    }

    /// Virtual horizon of this regime. The sparse run is 3× longer: its
    /// point is the steady-state drive cost, so the horizon must dwarf
    /// the fixed start-up work (world build, the warm-up validation
    /// round) that both modes pay equally.
    pub fn virtual_secs(self, p: &Params) -> u64 {
        match self {
            MotionProfile::Dense => p.virtual_secs,
            MotionProfile::Sparse => 3 * p.virtual_secs,
        }
    }

    /// Contact-validation period of this regime. Dense uses the tier
    /// default; sparse stretches the period to its whole horizon — one
    /// round per run — matching the deployment it models: a mostly-still
    /// service network maintains contacts on a long cadence. Validation
    /// is identical protocol work in both drive modes, so a short period
    /// would only dilute the mobility-drive comparison with a shared
    /// constant.
    pub fn validation_period(self, p: &Params) -> SimDuration {
        match self {
            MotionProfile::Dense => p.validation_period,
            MotionProfile::Sparse => SimDuration::from_secs(self.virtual_secs(p)),
        }
    }
}

/// Parameters of the scale-events tier.
#[derive(Clone, Debug)]
pub struct Params {
    /// Node counts to run (each at scenario-5 density).
    pub nodes: Vec<usize>,
    /// Virtual seconds each mode advances in the dense regime; the
    /// sparse regime runs 3× this (see
    /// [`MotionProfile::virtual_secs`]).
    pub virtual_secs: u64,
    /// Contact-validation period of the dense regime; the sparse regime
    /// stretches it to its whole horizon (see
    /// [`MotionProfile::validation_period`]).
    pub validation_period: SimDuration,
    /// Zone radius R.
    pub radius: u16,
    /// Nodes per mobility region.
    pub region_nodes: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nodes: vec![100_000],
            virtual_secs: 30,
            validation_period: SimDuration::from_secs(10),
            radius: 2,
            region_nodes: REGION_NODES,
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// Small sizes for CI smoke runs.
    pub fn quick() -> Self {
        Params {
            nodes: vec![2_000],
            virtual_secs: 8,
            ..Params::default()
        }
    }
}

/// The protocol configuration of a scale-events run in `motion`'s regime.
pub fn protocol_config(p: &Params, motion: MotionProfile) -> CardConfig {
    let mut cfg = CardConfig::default()
        .with_radius(p.radius)
        .with_max_contact_distance(4 * p.radius)
        .with_target_contacts(4)
        .with_depth(3)
        .with_seed(p.seed);
    cfg.validation_period = motion.validation_period(p);
    cfg
}

/// Wall-clock measurements of one drive mode.
#[derive(Clone, Copy, Debug)]
pub struct ModeStats {
    /// Wall seconds for the whole drive.
    pub wall_s: f64,
    /// Events delivered by the engine.
    pub events: u64,
    /// Delivered events per wall second.
    pub events_per_s: f64,
    /// Virtual seconds advanced per wall second.
    pub virt_per_wall: f64,
    /// Region-ticks covered without a wake (0 in tick mode).
    pub ticks_skipped: u64,
    /// Topology refreshes performed.
    pub refreshes: u64,
}

/// Measured outcome of one (N, motion) run, both modes side by side.
#[derive(Clone, Debug)]
pub struct EventsRow {
    /// The scenario run.
    pub scenario: Scenario,
    /// Motion regime.
    pub motion: MotionProfile,
    /// Virtual seconds advanced by each mode.
    pub virtual_secs: u64,
    /// The tick-synchronous reference drive.
    pub tick: ModeStats,
    /// The event-driven drive.
    pub event: ModeStats,
    /// Virtual-time speed-up of the event drive over the tick drive
    /// (`tick.wall_s / event.wall_s`).
    pub speedup: f64,
    /// Query arrivals executed (identical in both modes).
    pub queries: usize,
    /// How many of them found their target.
    pub query_hits: usize,
    /// Standing subscriptions registered.
    pub standing: usize,
    /// Standing chains broken by churn over the run.
    pub standing_breaks: u64,
    /// Successful re-resolutions after breaks.
    pub standing_reresolved: u64,
    /// Total virtual milliseconds subscriptions spent broken.
    pub standing_broken_ms: f64,
    /// The in-run bit-identity assertion passed (always true when the
    /// tier returns at all; the column documents that it was checked).
    pub fidelity_checked: bool,
}

/// Build the per-region dwell-walk partition of one run. Called once per
/// mode with identical arguments, so both drivers own bit-identical
/// models. Public so the `tick_loop`/`event_loop` micro-benches drive the
/// exact same populations this tier reports.
pub fn partition(
    scenario: &Scenario,
    motion: MotionProfile,
    region_nodes: usize,
    seed: u64,
) -> RegionalMobility {
    let splitter = SeedSplitter::new(seed);
    let mut m = RegionalMobility::new();
    let mut placed = 0usize;
    let mut r = 0u64;
    while placed < scenario.nodes {
        let len = region_nodes.min(scenario.nodes - placed);
        m.push_region(
            len,
            Box::new(RandomWalk::new_with_dwell(
                len,
                scenario.field(),
                0.5,
                2.0,
                motion.epoch_secs(),
                motion.pause_prob(),
                splitter.stream("scale-events-mobility", r),
            )),
        );
        placed += len;
        r += 1;
    }
    m
}

/// The run's workload: standing subscriptions early (so churn has the
/// whole run to break them), one-shot queries spread across the run.
fn workload(scenario: &Scenario, virtual_secs: u64, seed: u64) -> Vec<Arrival> {
    let mut rng = SeedSplitter::new(seed).stream("scale-events-workload", 0);
    let horizon_ms = virtual_secs * 1000;
    let mut arrivals = Vec::with_capacity(STANDING_SUBSCRIPTIONS + QUERY_ARRIVALS);
    for _ in 0..STANDING_SUBSCRIPTIONS {
        arrivals.push(Arrival {
            at: SimDuration::from_millis(rng.index((horizon_ms / 4).max(1) as usize) as u64),
            kind: ArrivalKind::Standing {
                source: NodeId::from(rng.index(scenario.nodes)),
                target: NodeId::from(rng.index(scenario.nodes)),
            },
        });
    }
    for _ in 0..QUERY_ARRIVALS {
        arrivals.push(Arrival {
            at: SimDuration::from_millis(rng.index(horizon_ms.max(1) as usize) as u64),
            kind: ArrivalKind::Query {
                source: NodeId::from(rng.index(scenario.nodes)),
                target: NodeId::from(rng.index(scenario.nodes)),
            },
        });
    }
    arrivals
}

/// Run every (N, motion) combination of `p`.
pub fn run(p: &Params) -> Vec<EventsRow> {
    let mut rows = Vec::new();
    for &n in &p.nodes {
        let scenario = scaled_scenario(n);
        for motion in [MotionProfile::Dense, MotionProfile::Sparse] {
            rows.push(run_one(&scenario, motion, p));
        }
    }
    rows
}

fn run_one(scenario: &Scenario, motion: MotionProfile, p: &Params) -> EventsRow {
    let virtual_secs = motion.virtual_secs(p);
    let duration = SimDuration::from_secs(virtual_secs);
    let drive = |mode: DriveMode| {
        let mut world = CardWorld::build(scenario, protocol_config(p, motion));
        world.select_all_contacts();
        let mut model = partition(scenario, motion, p.region_nodes, p.seed);
        let mut driver = EventDriver::new(
            &world,
            &model,
            mode,
            workload(scenario, virtual_secs, p.seed),
        );
        let t0 = Instant::now();
        driver.drive(&mut world, &mut model, duration);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let report = driver.report().clone();
        assert_eq!(report.audit_violations, 0, "grid audit failed in {mode:?}");
        let stats = ModeStats {
            wall_s,
            events: report.events_processed,
            events_per_s: report.events_processed as f64 / wall_s,
            virt_per_wall: virtual_secs as f64 / wall_s,
            ticks_skipped: report.region_ticks_skipped,
            refreshes: report.refreshes,
        };
        (world, report, stats)
    };

    let (tick_world, tick_report, tick_stats) = drive(DriveMode::Tick);
    let (ev_world, ev_report, ev_stats) = drive(DriveMode::Event);

    // The fidelity contract, asserted at full N: both modes land the same
    // world, message history and workload answers, bit for bit.
    assert_eq!(
        ev_world.network().adj().canonical_csr(),
        tick_world.network().adj().canonical_csr(),
        "{motion:?}: adjacency diverged between drive modes"
    );
    assert_eq!(
        ev_world.stats().series_where(|_| true),
        tick_world.stats().series_where(|_| true),
        "{motion:?}: message series diverged between drive modes"
    );
    assert_eq!(
        ev_world.maintenance_totals(),
        tick_world.maintenance_totals(),
        "{motion:?}: maintenance totals diverged between drive modes"
    );
    assert_eq!(
        ev_world.standing_queries(),
        tick_world.standing_queries(),
        "{motion:?}: standing-query state diverged between drive modes"
    );
    assert_eq!(
        ev_report.outcomes, tick_report.outcomes,
        "{motion:?}: query outcomes diverged between drive modes"
    );

    let standing_stats = ev_world.standing_queries().stats().clone();
    EventsRow {
        scenario: *scenario,
        motion,
        virtual_secs,
        tick: tick_stats,
        event: ev_stats,
        speedup: tick_stats.wall_s / ev_stats.wall_s.max(1e-9),
        queries: ev_report.outcomes.len(),
        query_hits: ev_report.outcomes.iter().filter(|o| o.found).count(),
        standing: ev_world.standing_queries().len(),
        standing_breaks: standing_stats.breaks,
        standing_reresolved: standing_stats.reresolved,
        standing_broken_ms: standing_stats.broken_ticks as f64 / 1e3,
        fidelity_checked: true,
    }
}

/// Render the tier as two Markdown tables: drive-mode wall-clock columns,
/// then the workload (queries + standing subscriptions) columns.
pub fn render(p: &Params, rows: &[EventsRow]) -> String {
    let headers = [
        "N",
        "Motion",
        "Virt (s)",
        "Tick wall (s)",
        "Event wall (s)",
        "Tick events/s",
        "Event events/s",
        "Tick virt×",
        "Event virt×",
        "Ticks skipped",
        "Refreshes t/e",
        "Speedup",
        "Fidelity",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.motion.label().to_string(),
                r.virtual_secs.to_string(),
                format!("{:.2}", r.tick.wall_s),
                format!("{:.2}", r.event.wall_s),
                format!("{:.0}", r.tick.events_per_s),
                format!("{:.0}", r.event.events_per_s),
                format!("{:.2}", r.tick.virt_per_wall),
                format!("{:.2}", r.event.virt_per_wall),
                r.event.ticks_skipped.to_string(),
                format!("{}/{}", r.tick.refreshes, r.event.refreshes),
                format!("{:.2}x", r.speedup),
                if r.fidelity_checked {
                    "bit-identical"
                } else {
                    "-"
                }
                .to_string(),
            ]
        })
        .collect();
    let work_headers = [
        "N",
        "Motion",
        "Queries",
        "Hit %",
        "Standing",
        "Breaks",
        "Re-resolved",
        "Broken (virt ms)",
    ];
    let work_body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.nodes.to_string(),
                r.motion.label().to_string(),
                r.queries.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * r.query_hits as f64 / r.queries.max(1) as f64
                ),
                r.standing.to_string(),
                r.standing_breaks.to_string(),
                r.standing_reresolved.to_string(),
                format!("{:.0}", r.standing_broken_ms),
            ]
        })
        .collect();
    format!(
        "### Scale events — event-driven vs tick-driven drive at scenario-5 density (tick {:.0} ms, {}-node regions; dense: {} virt s at validation {:.0} s, sparse: {} virt s at a horizon-length maintenance cadence; fidelity asserted in-run)\n\n{}\n\n\
         ### Scale events — workload executed identically by both modes ({} standing + {} query arrivals)\n\n{}",
        CardConfig::default().mobility_tick.as_secs_f64() * 1e3,
        p.region_nodes,
        MotionProfile::Dense.virtual_secs(p),
        MotionProfile::Dense.validation_period(p).as_secs_f64(),
        MotionProfile::Sparse.virtual_secs(p),
        markdown_table(&headers, &body),
        STANDING_SUBSCRIPTIONS,
        QUERY_ARRIVALS,
        markdown_table(&work_headers, &work_body),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            nodes: vec![400],
            virtual_secs: 4,
            validation_period: SimDuration::from_secs(2),
            ..Params::default()
        }
    }

    #[test]
    fn both_motions_run_and_fidelity_holds() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].motion, MotionProfile::Dense);
        assert_eq!(rows[1].motion, MotionProfile::Sparse);
        for r in &rows {
            assert!(r.fidelity_checked);
            assert_eq!(r.queries, QUERY_ARRIVALS);
            assert_eq!(r.standing, STANDING_SUBSCRIPTIONS);
            assert!(r.tick.events > 0 && r.event.events > 0);
            assert!(
                r.event.events <= r.tick.events,
                "event mode only elides work"
            );
            // tick mode never skips a wake
            assert_eq!(r.tick.ticks_skipped, 0);
        }
    }

    #[test]
    fn sparse_motion_skips_ticks_dense_does_not() {
        let rows = run(&tiny());
        let (dense, sparse) = (&rows[0], &rows[1]);
        assert_eq!(
            dense.event.ticks_skipped, 0,
            "an always-walking population leaves no quiescent window"
        );
        assert!(
            sparse.event.ticks_skipped > 0,
            "a 99.99%-dwell population must let the event loop sleep"
        );
        assert!(
            sparse.event.events < sparse.tick.events,
            "skipped wakes must show up as fewer delivered events"
        );
    }

    #[test]
    fn render_mentions_every_column() {
        let p = tiny();
        let rows = run(&p);
        let text = render(&p, &rows);
        assert!(text.contains("dense"));
        assert!(text.contains("sparse"));
        assert!(text.contains("Event events/s"));
        assert!(text.contains("Event virt×"));
        assert!(text.contains("Ticks skipped"));
        assert!(text.contains("Speedup"));
        assert!(text.contains("bit-identical"));
        assert!(text.contains("Broken (virt ms)"));
    }
}

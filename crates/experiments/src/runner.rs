//! Parallel sweep execution.
//!
//! Every figure is a sweep over an independent parameter (NoC, R, r, D,
//! network size, scheme) where each cell builds and runs its own simulation
//! world. Cells are embarrassingly parallel, so we fan them out over scoped
//! threads with crossbeam channels as the work queue and result collector —
//! results come back in input order, keeping reports and seeds
//! deterministic regardless of scheduling.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Map `f` over `items` in parallel (scoped threads, at most
/// `available_parallelism` workers), preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);

    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        task_tx.send(pair).expect("queueing work cannot fail");
    }
    drop(task_tx); // workers drain until empty

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = task_rx.recv() {
                    result_tx.send((i, f(item))).expect("collector alive");
                }
            });
        }
    });
    drop(result_tx);

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in result_rx {
        debug_assert!(out[i].is_none(), "duplicate result for cell {i}");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_once_per_item() {
        let calls = AtomicU32::new(0);
        let out = parallel_map((0..32).collect(), |x: u32| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 32);
        assert_eq!(calls.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let out = parallel_map(items, |s| s.len());
        assert_eq!(out, vec![2; 10]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // cells with wildly different costs must still land in order
        let out = parallel_map((0..24u64).collect(), |x| {
            if x % 3 == 0 {
                // burn a little CPU
                let mut acc = 0u64;
                for i in 0..50_000 {
                    acc = acc.wrapping_add(i ^ x);
                }
                std::hint::black_box(acc);
            }
            x * 10
        });
        assert_eq!(out, (0..24u64).map(|x| x * 10).collect::<Vec<_>>());
    }
}

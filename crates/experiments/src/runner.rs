//! Parallel sweep execution.
//!
//! Every figure is a sweep over an independent parameter (NoC, R, r, D,
//! network size, scheme) where each cell builds and runs its own simulation
//! world. Cells are embarrassingly parallel, so we fan them out with
//! [`sim_core::par::parallel_map`] — results come back in input order,
//! keeping reports and seeds deterministic regardless of scheduling.
//!
//! The implementation lives in `sim_core::par` so the lower layers
//! (topology refresh, neighborhood tables) can use the same primitive; this
//! module re-exports it for the figure modules.

pub use sim_core::par::{parallel_map, parallel_map_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_preserves_order() {
        let out = parallel_map((0..50).collect(), |x: i32| x * 3);
        assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn reexport_scratch_variant_usable() {
        let out = parallel_map_with((0..8u32).collect(), Vec::<u32>::new, |buf, x| {
            buf.push(x);
            x + 1
        });
        assert_eq!(out, (1..9u32).collect::<Vec<_>>());
    }
}

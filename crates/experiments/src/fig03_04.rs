//! Figs 3 & 4 — PM vs EM: reachability and backtracking overhead vs NoC.
//!
//! Paper setup (caption): 500 nodes, 710×710 m, tx range 50 m, R=3, r=20,
//! D=1. Fig 3 plots reachability (%) for NoC 1–9; Fig 4 plots backtracking
//! messages per node for NoC 1–5.
//!
//! Reproduction status: the Fig 3 ordering — EM reaches more of the network than PM at every
//! NoC, with PM's curve lower and flatter — reproduces robustly. The Fig 4
//! *backtracking* ordering (PM ≫ EM) does **not** hold under our precisely
//! specified walk semantics (uniform-random DFS, per-query tried-neighbor
//! state, sticky per-node decisions): EM pays to *geometrically escape* the
//! 2R ball before any node may accept, while PM's walk-hop count d inflates
//! along the meander, letting it accept nearby (overlapping — hence its
//! lower reachability) nodes cheaply. We therefore report backtracking
//! *and* total selection traffic for both methods and document the
//! deviation rather than tune the walk until the plot matches.

use crate::output::markdown_table;
use crate::runner::parallel_map;
use card_core::{CardConfig, CardWorld, SelectionMethod};
use net_topology::scenario::{Scenario, SCENARIO_5};
use sim_core::stats::MsgKind;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Params {
    /// Topology family (paper: scenario 5).
    pub scenario: Scenario,
    /// Neighborhood radius R (paper: 3).
    pub radius: u16,
    /// Maximum contact distance r (paper: 20).
    pub max_contact_distance: u16,
    /// NoC sweep values (paper: 1–9 for Fig 3, 1–5 for Fig 4).
    pub noc_values: Vec<usize>,
    /// Root seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scenario: SCENARIO_5,
            radius: 3,
            max_contact_distance: 20,
            noc_values: (1..=9).collect(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Params {
    /// A reduced configuration for benches/CI (seconds, same shape).
    pub fn quick() -> Self {
        Params {
            scenario: Scenario::new(150, 400.0, 400.0, 50.0),
            radius: 2,
            max_contact_distance: 10,
            noc_values: (1..=4).collect(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// One method's curves over the NoC sweep.
#[derive(Clone, Debug)]
pub struct MethodCurve {
    /// Which selection method produced this curve.
    pub method: SelectionMethod,
    /// Mean reachability (%) per NoC value (Fig 3).
    pub reachability_pct: Vec<f64>,
    /// Backtracking messages per node per NoC value (Fig 4).
    pub backtracks_per_node: Vec<f64>,
    /// Total selection traffic (CSQ + backtrack + reply) per node.
    pub selection_msgs_per_node: Vec<f64>,
    /// Mean contacts actually selected per node (saturation diagnostic).
    pub mean_contacts: Vec<f64>,
}

/// Run the sweep for PM(eq1) — the paper's original probabilistic
/// formulation — and EM. (`ablation_pm_equations` benches eq1 vs eq2.)
pub fn run(params: &Params) -> Vec<MethodCurve> {
    let methods = [SelectionMethod::ProbabilisticEq1, SelectionMethod::Edge];
    methods
        .iter()
        .map(|&method| {
            let cells: Vec<usize> = params.noc_values.clone();
            let results = parallel_map(cells, |noc| {
                let cfg = CardConfig::default()
                    .with_seed(params.seed)
                    .with_radius(params.radius)
                    .with_max_contact_distance(params.max_contact_distance)
                    .with_target_contacts(noc)
                    .with_method(method);
                let mut world = CardWorld::build(&params.scenario, cfg);
                world.select_all_contacts();
                let n = world.network().node_count() as f64;
                let reach = world.reachability_summary(1).mean_pct;
                let backtracks = world.stats().total(MsgKind::CsqBacktrack) as f64 / n;
                let selection = world.stats().total_where(MsgKind::is_selection) as f64 / n;
                (reach, backtracks, selection, world.mean_contacts())
            });
            MethodCurve {
                method,
                reachability_pct: results.iter().map(|r| r.0).collect(),
                backtracks_per_node: results.iter().map(|r| r.1).collect(),
                selection_msgs_per_node: results.iter().map(|r| r.2).collect(),
                mean_contacts: results.iter().map(|r| r.3).collect(),
            }
        })
        .collect()
}

/// Render both figures as Markdown tables.
pub fn render(params: &Params, curves: &[MethodCurve]) -> String {
    let mut headers = vec!["NoC".to_string()];
    for c in curves {
        headers.push(format!("{} reach %", c.method.label()));
        headers.push(format!("{} backtracks/node", c.method.label()));
        headers.push(format!("{} sel msgs/node", c.method.label()));
        headers.push(format!("{} contacts", c.method.label()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = params
        .noc_values
        .iter()
        .enumerate()
        .map(|(i, noc)| {
            let mut row = vec![noc.to_string()];
            for c in curves {
                row.push(format!("{:.1}", c.reachability_pct[i]));
                row.push(format!("{:.1}", c.backtracks_per_node[i]));
                row.push(format!("{:.1}", c.selection_msgs_per_node[i]));
                row.push(format!("{:.2}", c.mean_contacts[i]));
            }
            row
        })
        .collect();
    format!(
        "### Figs 3 & 4 — PM vs EM ({}, R={}, r={}, D=1)\n\n{}",
        params.scenario.label(),
        params.radius,
        params.max_contact_distance,
        markdown_table(&header_refs, &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes_hold() {
        let params = Params::quick();
        let curves = run(&params);
        assert_eq!(curves.len(), 2);
        let pm = &curves[0];
        let em = &curves[1];
        assert_eq!(pm.method, SelectionMethod::ProbabilisticEq1);
        assert_eq!(em.method, SelectionMethod::Edge);
        let k = params.noc_values.len();
        assert_eq!(pm.reachability_pct.len(), k);
        assert_eq!(pm.selection_msgs_per_node.len(), k);

        // Fig 3 shape: reachability is (weakly) increasing in NoC for EM.
        for w in em.reachability_pct.windows(2) {
            assert!(w[1] >= w[0] - 1.0, "EM reachability should not drop: {w:?}");
        }
        // Fig 3 headline: EM >= PM at the top of the sweep (PM's contacts
        // overlap, buying less reachability per contact).
        assert!(
            em.reachability_pct[k - 1] >= pm.reachability_pct[k - 1] * 0.9,
            "EM {:.1}% should not trail PM {:.1}%",
            em.reachability_pct[k - 1],
            pm.reachability_pct[k - 1]
        );
        // Backtracking grows with NoC for both methods (saturation cost).
        for c in curves.iter() {
            assert!(
                c.backtracks_per_node[k - 1] > c.backtracks_per_node[0],
                "{} backtracking should grow with NoC",
                c.method.label()
            );
        }
        // Selection traffic includes the backtracking component.
        for c in curves.iter() {
            for i in 0..k {
                assert!(c.selection_msgs_per_node[i] >= c.backtracks_per_node[i]);
            }
        }
    }

    #[test]
    fn render_mentions_both_methods() {
        let params = Params::quick();
        let text = render(&params, &run(&params));
        assert!(text.contains("PM(eq1)"));
        assert!(text.contains("EM"));
    }
}

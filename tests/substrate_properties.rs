//! Property-based integration tests across substrate crates.

use card_manet::prelude::*;
use card_manet::routing::DsdvSim;
use card_manet::sim::stats::MsgStats;
use card_manet::sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DSDV converges to exactly the oracle tables CARD consumes, on
    /// arbitrary unit-disk scenarios.
    #[test]
    fn dsdv_matches_oracle_on_scenarios(seed in 0u64..500, radius in 1u16..4) {
        let scenario = Scenario::new(60, 300.0, 300.0, 60.0);
        let (_, adj) = scenario.instantiate(seed);
        let oracle = card_manet::routing::neighborhood::NeighborhoodTables::compute(&adj, radius);
        let mut dsdv = DsdvSim::new(60, radius);
        dsdv.run_until_converged(&adj, 30);
        prop_assert!(dsdv.matches_oracle(&oracle));
    }

    /// EM selection invariants hold on arbitrary scenario seeds: contacts
    /// sit strictly beyond 2R true hops, within r walk hops, with valid
    /// stored paths and pairwise non-overlapping neighborhoods per source.
    #[test]
    fn em_selection_invariants(seed in 0u64..200) {
        let scenario = Scenario::new(120, 420.0, 420.0, 55.0);
        let cfg = CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(9)
            .with_target_contacts(4)
            .with_seed(seed);
        let mut world = CardWorld::build(&scenario, cfg);
        world.select_all_contacts();
        for node in NodeId::all(120) {
            let ids: Vec<NodeId> = world.contact_table(node).ids().collect();
            for c in world.contact_table(node).contacts() {
                prop_assert!(c.hops() >= 2 * cfg.radius);
                prop_assert!(c.hops() <= cfg.max_contact_distance);
                let true_dist = full_bfs(world.network().adj(), node)
                    .distance(c.id)
                    .expect("contact connected");
                prop_assert!(true_dist > 2 * cfg.radius, "EM overlap violated");
                for hop in c.path.windows(2) {
                    prop_assert!(world.network().is_link(hop[0], hop[1]));
                }
            }
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    prop_assert!(
                        !world.network().tables().of(a).contains(b),
                        "contacts {a}/{b} of {node} overlap"
                    );
                }
            }
        }
    }

    /// Reachability sets always contain the neighborhood and never exceed
    /// the network, and grow monotonically in depth.
    #[test]
    fn reachability_monotone_in_depth(seed in 0u64..200, depth in 1u16..4) {
        let scenario = Scenario::new(100, 400.0, 400.0, 55.0);
        let cfg = CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(9)
            .with_target_contacts(3)
            .with_seed(seed);
        let mut world = CardWorld::build(&scenario, cfg);
        world.select_all_contacts();
        for node in NodeId::all(20) {
            let shallow = card_manet::card::reachability::reachability_set(
                world.network(), world.contact_tables(), node, depth);
            let deep = card_manet::card::reachability::reachability_set(
                world.network(), world.contact_tables(), node, depth + 1);
            prop_assert!(shallow.len() <= deep.len());
            prop_assert!(deep.len() <= 100);
            // neighborhood ⊆ reach set
            for m in world.network().tables().of(node).iter_members() {
                prop_assert!(shallow.contains(m.index()));
            }
        }
    }

    /// A successful query implies the target is in the source's reach set;
    /// targets outside the depth-D reach set are never "found".
    #[test]
    fn query_found_iff_reachable(seed in 0u64..100) {
        let scenario = Scenario::new(100, 400.0, 400.0, 55.0);
        let cfg = CardConfig::default()
            .with_radius(2)
            .with_max_contact_distance(9)
            .with_target_contacts(3)
            .with_depth(2)
            .with_seed(seed);
        let mut world = CardWorld::build(&scenario, cfg);
        world.select_all_contacts();
        let source = NodeId::new(0);
        let reach = card_manet::card::reachability::reachability_set(
            world.network(), world.contact_tables(), source, 2);
        for t in 0..100u32 {
            let target = NodeId::new(t);
            let out = world.query(source, target);
            prop_assert_eq!(
                out.found,
                reach.contains(target.index()),
                "query({}) disagrees with reach set", target
            );
        }
    }

    /// Flooding transmissions equal the source's component size minus one
    /// when the target is found (duplicate suppression works everywhere).
    #[test]
    fn flood_cost_is_component_bound(seed in 0u64..200) {
        let scenario = Scenario::new(80, 400.0, 400.0, 55.0);
        let (_, adj) = scenario.instantiate(seed);
        let net = Network::from_positions(
            scenario.field(),
            scenario.instantiate(seed).0,
            scenario.tx_range,
            2,
        );
        let bfs = full_bfs(&adj, NodeId::new(0));
        if bfs.visited_count() >= 2 {
            let target = *bfs.visited().last().unwrap();
            let mut st = MsgStats::default();
            let out = flood_search(net.adj(), NodeId::new(0), target, &mut st, SimTime::ZERO);
            prop_assert!(out.found);
            prop_assert_eq!(out.transmissions, bfs.visited_count() as u64 - 1);
        }
    }
}

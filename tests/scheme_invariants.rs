//! Integration: cross-scheme invariants on shared topologies.

use card_manet::prelude::*;
use card_manet::routing::expanding_ring::doubling_schedule;
use card_manet::routing::zrp::BordercastConfig;
use card_manet::sim::stats::{MsgKind, MsgStats};
use card_manet::sim::time::SimTime;

fn network() -> Network {
    Network::from_scenario(&Scenario::new(220, 560.0, 560.0, 55.0), 2, 77)
}

fn connected_pairs(net: &Network, count: usize) -> Vec<(NodeId, NodeId)> {
    let bfs = full_bfs(net.adj(), NodeId::new(0));
    let pool: Vec<NodeId> = bfs.visited().to_vec();
    let mut rng = SeedSplitter::new(123).stream("pairs", 0);
    (0..count)
        .map(|_| loop {
            let s = *rng.choose(&pool).unwrap();
            let t = *rng.choose(&pool).unwrap();
            if s != t {
                break (s, t);
            }
        })
        .collect()
}

#[test]
fn flooding_and_bordercast_always_succeed_in_component() {
    let net = network();
    for (s, t) in connected_pairs(&net, 25) {
        let mut st = MsgStats::default();
        assert!(flood_search(net.adj(), s, t, &mut st, SimTime::ZERO).found);
        let out = bordercast_search(
            net.adj(),
            net.tables(),
            s,
            t,
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        );
        assert!(out.found, "bordercast must find {t} from {s}");
    }
}

#[test]
fn bordercast_never_beats_physics_flood_never_beats_bordercast_on_average() {
    let net = network();
    let pairs = connected_pairs(&net, 30);
    let mut flood_total = 0u64;
    let mut bc_total = 0u64;
    for &(s, t) in &pairs {
        let mut st = MsgStats::default();
        flood_total += flood_search(net.adj(), s, t, &mut st, SimTime::ZERO).total_messages();
        let mut st = MsgStats::default();
        bc_total += bordercast_search(
            net.adj(),
            net.tables(),
            s,
            t,
            &BordercastConfig::default(),
            &mut st,
            SimTime::ZERO,
        )
        .total_messages();
    }
    assert!(
        bc_total < flood_total,
        "bordercasting ({bc_total}) must undercut flooding ({flood_total}) on average"
    );
}

#[test]
fn expanding_ring_never_exceeds_flood_by_much_for_near_targets() {
    let net = network();
    let schedule = doubling_schedule(24);
    // targets 1 hop away: ERS stage-1 is just the source's broadcast
    for s in NodeId::all(40) {
        if let Some(&t) = net.adj().neighbors(s).first() {
            let mut st = MsgStats::default();
            let ers = expanding_ring_search(net.adj(), s, t, &schedule, &mut st, SimTime::ZERO);
            assert!(ers.found);
            assert_eq!(ers.stages_used, 1);
            assert_eq!(ers.transmissions, 1);
        }
    }
}

#[test]
fn card_query_cheaper_than_flooding_for_connected_workload() {
    // CARD's advantage is a *scale* claim (§I): at a few hundred nodes with
    // roomy zones it undercuts flooding clearly; tiny networks with R=2
    // zones are genuinely marginal (flooding is cheap there).
    let scenario = Scenario::new(400, 650.0, 650.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(4)
        .with_max_contact_distance(18)
        .with_target_contacts(8)
        .with_depth(3)
        .with_seed(11);
    let mut world = CardWorld::build(&scenario, cfg);
    world.select_all_contacts();

    let pairs = connected_pairs(world.network(), 30);
    let mut card_total = 0u64;
    let mut flood_total = 0u64;
    let mut found = 0usize;
    for &(s, t) in &pairs {
        let out = world.query(s, t);
        card_total += out.total_messages();
        found += out.found as usize;
        let mut st = MsgStats::default();
        flood_total +=
            flood_search(world.network().adj(), s, t, &mut st, SimTime::ZERO).total_messages();
    }
    assert!(
        found as f64 >= 0.8 * pairs.len() as f64,
        "CARD should find most connected targets at D=3 ({found}/{})",
        pairs.len()
    );
    assert!(
        card_total < flood_total,
        "CARD querying ({card_total}) must undercut flooding ({flood_total})"
    );
}

#[test]
fn query_detection_levels_are_ordered() {
    use card_manet::routing::zrp::QueryDetection;
    let net = network();
    let pairs = connected_pairs(&net, 20);
    let mut totals = Vec::new();
    for qd in [
        QueryDetection::None,
        QueryDetection::Qd1,
        QueryDetection::Qd1Qd2,
    ] {
        let mut sum = 0u64;
        for &(s, t) in &pairs {
            let mut st = MsgStats::default();
            sum += bordercast_search(
                net.adj(),
                net.tables(),
                s,
                t,
                &BordercastConfig {
                    qd,
                    max_bordercasts: 100_000,
                },
                &mut st,
                SimTime::ZERO,
            )
            .total_messages();
        }
        totals.push(sum);
    }
    assert!(totals[1] <= totals[0], "QD1 must not exceed no-detection");
    assert!(totals[2] <= totals[1], "QD2 must not exceed QD1");
}

#[test]
fn stats_record_for_every_scheme() {
    let net = network();
    let (s, t) = connected_pairs(&net, 1)[0];
    let mut st = MsgStats::default();
    flood_search(net.adj(), s, t, &mut st, SimTime::ZERO);
    bordercast_search(
        net.adj(),
        net.tables(),
        s,
        t,
        &BordercastConfig::default(),
        &mut st,
        SimTime::ZERO,
    );
    expanding_ring_search(
        net.adj(),
        s,
        t,
        &doubling_schedule(24),
        &mut st,
        SimTime::ZERO,
    );
    assert!(st.total(MsgKind::Flood) > 0);
    // bordercast may legitimately be zero-message if t is in s's zone;
    // expanding ring likewise needs at least the first ring unless t == s
    assert!(st.grand_total() >= st.total(MsgKind::Flood));
}

//! End-to-end integration: the full CARD lifecycle across every crate.

use card_manet::prelude::*;
use card_manet::sim::stats::MsgKind;
use card_manet::sim::time::SimDuration;

fn world() -> CardWorld {
    let scenario = Scenario::new(250, 600.0, 600.0, 55.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(10)
        .with_target_contacts(5)
        .with_depth(3)
        .with_seed(99);
    CardWorld::build(&scenario, cfg)
}

#[test]
fn lifecycle_select_query_reach() {
    let mut w = world();
    w.select_all_contacts();
    assert!(
        w.total_contacts() > 100,
        "250 nodes should hold plenty of contacts"
    );

    // Reachability strictly grows with depth.
    let r1 = w.reachability_summary(1).mean_pct;
    let r2 = w.reachability_summary(2).mean_pct;
    let r3 = w.reachability_summary(3).mean_pct;
    assert!(r1 > 5.0);
    assert!(r2 > r1);
    assert!(r3 >= r2);

    // Every target inside a source's depth-3 reach set is found by a query,
    // and every found target costs messages unless it was in the zone.
    let source = NodeId::new(5);
    let reach = card_manet::card::reachability::reachability_set(
        w.network(),
        w.contact_tables(),
        source,
        3,
    );
    let mut checked = 0;
    for t in reach.iter().take(40) {
        let target = NodeId::from(t);
        let out = w.query(source, target);
        assert!(out.found, "target {target} in reach set must be found");
        if !w.network().tables().of(source).contains(target) {
            assert!(out.query_msgs > 0);
            assert!(out.depth_used >= 1);
        } else {
            assert_eq!(out.total_messages(), 0);
        }
        checked += 1;
    }
    assert!(checked > 10);
}

#[test]
fn determinism_full_stack() {
    let run = || {
        let mut w = world();
        w.select_all_contacts();
        let mut rwp = RandomWaypoint::new(
            250,
            w.network().field(),
            1.0,
            5.0,
            0.0,
            SeedSplitter::new(7).stream("m", 0),
        );
        w.run_mobile(&mut rwp, SimDuration::from_secs(5));
        let q = w.query(NodeId::new(0), NodeId::new(200));
        (
            w.total_contacts(),
            w.stats().grand_total(),
            w.reachability_summary(2).mean_pct.to_bits(),
            q.found,
            q.total_messages(),
        )
    };
    assert_eq!(run(), run(), "identical seeds must give identical worlds");
}

#[test]
fn message_taxonomy_consistency() {
    let mut w = world();
    w.select_all_contacts();
    let sel = w.stats().total_where(MsgKind::is_selection);
    assert_eq!(
        sel,
        w.stats().total(MsgKind::Csq)
            + w.stats().total(MsgKind::CsqBacktrack)
            + w.stats().total(MsgKind::CsqReply)
    );
    // selection never emits query/maintenance kinds
    assert_eq!(w.stats().total(MsgKind::Dsq), 0);
    assert_eq!(w.stats().total(MsgKind::Validation), 0);

    let _ = w.query(NodeId::new(1), NodeId::new(240));
    assert_eq!(
        w.stats().total_where(MsgKind::is_selection),
        sel,
        "queries don't select"
    );
}

#[test]
fn contact_invariants_after_selection() {
    let mut w = world();
    w.select_all_contacts();
    let (min_hops, max_hops) = w.config().valid_path_hops();
    for node in NodeId::all(w.network().node_count()) {
        for c in w.contact_table(node).contacts() {
            // stored paths are valid routes on the live topology
            for hop in c.path.windows(2) {
                assert!(w.network().is_link(hop[0], hop[1]));
            }
            assert_eq!(c.source(), node);
            // EM guarantees the hop interval at selection time
            assert!(
                c.hops() > min_hops || c.hops() == min_hops,
                "hops {}",
                c.hops()
            );
            assert!(c.hops() <= max_hops);
            // no overlap: the contact's neighborhood excludes the source
            assert!(!w.network().tables().of(c.id).contains(node));
        }
    }
}

#[test]
fn rebuilding_with_different_seed_changes_world() {
    let scenario = Scenario::new(150, 500.0, 500.0, 50.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4);
    let mut a = CardWorld::build(&scenario, cfg.with_seed(1));
    let mut b = CardWorld::build(&scenario, cfg.with_seed(2));
    a.select_all_contacts();
    b.select_all_contacts();
    assert_ne!(
        (a.total_contacts(), a.stats().grand_total()),
        (b.total_contacts(), b.stats().grand_total()),
        "different seeds should differ somewhere"
    );
}

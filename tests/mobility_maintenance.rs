//! Integration: contact maintenance under every mobility model.

use card_manet::mobility::{GroupMobility, RandomWalk, StaticModel};
use card_manet::prelude::*;
use card_manet::sim::stats::MsgKind;
use card_manet::sim::time::SimDuration;

fn cfg() -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(9)
        .with_target_contacts(4)
        .with_seed(31)
}

fn built_world() -> CardWorld {
    let scenario = Scenario::new(200, 550.0, 550.0, 55.0);
    let mut w = CardWorld::build(&scenario, cfg());
    w.select_all_contacts();
    w
}

#[test]
fn static_model_never_loses_contacts() {
    let mut w = built_world();
    w.run_mobile(&mut StaticModel, SimDuration::from_secs(6));
    assert_eq!(w.maintenance_totals().lost, 0);
    assert_eq!(w.maintenance_totals().dropped_out_of_range, 0);
    assert_eq!(
        w.maintenance_totals().recovered,
        0,
        "nothing to recover when static"
    );
    assert!(w.maintenance_totals().validated > 0);
}

#[test]
fn random_waypoint_exercises_recovery_and_reselection() {
    let mut w = built_world();
    let mut model = RandomWaypoint::new(
        200,
        w.network().field(),
        2.0,
        8.0,
        0.0,
        SeedSplitter::new(5).stream("rwp", 0),
    );
    w.run_mobile(&mut model, SimDuration::from_secs(10));
    let totals = w.maintenance_totals();
    assert!(totals.validated > 0);
    assert!(
        totals.recovered > 0,
        "moderate mobility should trigger local recovery"
    );
    // the table survives churn thanks to rule-5 re-selection
    assert!(w.total_contacts() > 0);
    assert!(w.stats().total(MsgKind::Validation) > 0);
    assert!(w.stats().total(MsgKind::ValidationReply) > 0);
}

#[test]
fn random_walk_maintenance_holds_up() {
    let mut w = built_world();
    let mut model = RandomWalk::new(
        200,
        w.network().field(),
        1.0,
        6.0,
        2.0,
        SeedSplitter::new(6).stream("walk", 0),
    );
    let before = w.total_contacts();
    w.run_mobile(&mut model, SimDuration::from_secs(8));
    assert!(before > 0);
    assert!(
        w.total_contacts() as f64 >= before as f64 * 0.3,
        "maintenance should sustain most contacts under random walk \
         ({before} -> {})",
        w.total_contacts()
    );
}

#[test]
fn group_mobility_with_coherent_deployment() {
    let field = Field::square(550.0);
    let config = cfg();
    let mut squads = GroupMobility::new(
        200,
        field,
        8,
        1.0,
        3.0,
        130.0,
        SeedSplitter::new(config.seed).stream("squads", 0),
    );
    let mut positions = vec![Point2::ORIGIN; 200];
    squads.advance(&mut positions, SimDuration::from_millis(1));
    let net = Network::from_positions(field, positions, 55.0, config.radius);
    let mut w = CardWorld::from_network(net, config);
    w.select_all_contacts();
    let before = w.total_contacts();
    assert!(before > 0, "overlapping squads must admit contacts");

    w.run_mobile(&mut squads, SimDuration::from_secs(8));
    assert!(
        w.total_contacts() as f64 >= before as f64 * 0.3,
        "squad drift should not wipe the tables ({before} -> {})",
        w.total_contacts()
    );
}

#[test]
fn validation_series_is_recorded_every_round() {
    let mut w = built_world();
    w.run_mobile(&mut StaticModel, SimDuration::from_secs(5));
    // rounds at ~0,1,2,3,4 s
    assert_eq!(w.contacts_series().len(), 5);
    // the series never goes negative and roughly tracks total_contacts
    let last = w.contacts_series().last_value().unwrap();
    assert_eq!(last, w.total_contacts() as f64);
}

#[test]
fn local_recovery_ablation_loses_more() {
    let run = |recovery: bool| {
        let scenario = Scenario::new(200, 550.0, 550.0, 55.0);
        let mut c = cfg();
        c.local_recovery = recovery;
        let mut w = CardWorld::build(&scenario, c);
        w.select_all_contacts();
        let mut model = RandomWaypoint::new(
            200,
            w.network().field(),
            2.0,
            8.0,
            0.0,
            SeedSplitter::new(12).stream("rwp", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(8));
        w.maintenance_totals().lost
    };
    let with = run(true);
    let without = run(false);
    assert!(
        without > with,
        "disabling local recovery must lose more contacts ({without} vs {with})"
    );
}

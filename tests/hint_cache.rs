//! Correctness guarantees for the §V route-hint cache.
//!
//! The contracts pinned here (see `card_core::hints` and the hinted-sweep
//! section of `card_core::world`):
//!
//! 1. **cache-off bit-identity** — with hints disabled, `query_all` (and
//!    the retained `query_all_cache_off` path of a hints-*enabled* world)
//!    is bit-identical to `query_all_serial`: same outcomes, same
//!    `MsgStats` bucket series, at any shard count — and the cache-off
//!    path never touches the store;
//! 2. **hints change cost, never answers** — across arbitrarily warmed
//!    repeat-heavy sweeps, every hinted outcome's `found` flag equals the
//!    cache-off verdict, and the whole hinted sweep (outcomes, message
//!    series, hint counters) is shard-count-invariant;
//! 3. **staleness is safe** — hints invalidated by TTL epochs or by
//!    mobility dirty-ball reports are misses, never forwards: a hint
//!    whose next hop is no longer a live contact of its holder falls back
//!    to the plain escalation with the identical outcome and cost, and
//!    churned worlds keep answer parity with an identically-evolved
//!    cache-off world.

use card_manet::card::hints::{HintKey, HintStore};
use card_manet::card::query::{dsq_query, dsq_query_hinted, HintContext, QueryScratch};
use card_manet::card::world::CardWorld;
use card_manet::card::CardConfig;
use card_manet::mobility::waypoint::RandomWaypoint;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::stats::MsgStats;
use card_manet::sim::time::SimDuration;
use card_manet::topology::node::NodeId;
use card_manet::topology::scenario::Scenario;
use proptest::prelude::*;

const NODES: usize = 140;

fn config(seed: u64, hints: bool) -> CardConfig {
    CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(3)
        .with_hints(hints)
        .with_seed(seed)
}

fn world(seed: u64, hints: bool) -> CardWorld {
    let scenario = Scenario::new(NODES, 460.0, 460.0, 55.0);
    let mut w = CardWorld::build(&scenario, config(seed, hints));
    w.select_all_contacts();
    w
}

/// Map raw index pairs into node pairs, repeating the list `reps` times —
/// the repeat-heavy mix that makes caches matter.
fn repeat_pairs(raw: &[(usize, usize)], reps: usize) -> Vec<(NodeId, NodeId)> {
    let one: Vec<(NodeId, NodeId)> = raw
        .iter()
        .map(|&(s, t)| (NodeId::from(s % NODES), NodeId::from(t % NODES)))
        .collect();
    let mut all = Vec::with_capacity(one.len() * reps);
    for _ in 0..reps {
        all.extend_from_slice(&one);
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1: the cache-off sweep is bit-identical to the serial
    /// reference at any shard count, whether hints are disabled or merely
    /// bypassed — and bypassing leaves the store untouched.
    #[test]
    fn prop_cache_off_sweep_is_bit_identical(
        seed in 0u64..200,
        shards in 1usize..40,
        raw in proptest::collection::vec((0usize..NODES, 0usize..NODES), 1..40),
    ) {
        let pairs = repeat_pairs(&raw, 1);
        let mut reference = world(seed, false);
        reference.set_shard_count(1);
        let expected = reference.query_all_serial(&pairs);
        let expected_series = reference.stats().series_where(|_| true);

        let mut off = world(seed, false);
        off.set_shard_count(shards);
        prop_assert_eq!(&off.query_all(&pairs), &expected);
        prop_assert_eq!(off.stats().series_where(|_| true), expected_series.clone());

        let mut hinted = world(seed, true);
        hinted.set_shard_count(shards);
        prop_assert_eq!(&hinted.query_all_cache_off(&pairs), &expected);
        prop_assert_eq!(hinted.stats().series_where(|_| true), expected_series);
        prop_assert!(
            hinted.hint_store().expect("hints stay enabled").is_empty(),
            "the cache-off path must never write hints"
        );
        prop_assert_eq!(hinted.hint_stats().lookups, 0);
    }

    /// Contract 2: warmed hinted sweeps keep exact answer parity with the
    /// cache-off baseline, and the full hinted observable state (outcomes
    /// with costs, message series, hint counters) is shard-invariant.
    #[test]
    fn prop_hints_change_cost_never_answers(
        seed in 0u64..200,
        shards in 2usize..40,
        raw in proptest::collection::vec((0usize..NODES, 0usize..NODES), 1..20),
    ) {
        let pairs = repeat_pairs(&raw, 3);
        let mut base = world(seed, false);
        let verdicts: Vec<bool> = base
            .query_all(&pairs)
            .iter()
            .map(|o| o.found)
            .collect();

        let mut reference = world(seed, true);
        reference.set_shard_count(1);
        let mut sharded = world(seed, true);
        sharded.set_shard_count(shards);
        for sweep in 0..3 {
            let expected = reference.query_all(&pairs);
            for (o, &found) in expected.iter().zip(&verdicts) {
                prop_assert_eq!(
                    o.found, found,
                    "hint changed an answer on sweep {}", sweep
                );
            }
            let got = sharded.query_all(&pairs);
            prop_assert_eq!(&got, &expected, "outcomes diverged on sweep {}", sweep);
        }
        prop_assert_eq!(reference.hint_stats(), sharded.hint_stats());
        prop_assert_eq!(
            reference.stats().series_where(|_| true),
            sharded.stats().series_where(|_| true)
        );
    }

    /// Contract 3 (mobility): warm the cache, churn the topology, query
    /// again — the hinted world must agree on every answer with a
    /// cache-off world that evolved through the identical mobility,
    /// whatever mix of TTL expiry, dirty-ball eviction and stale-contact
    /// misses the churn produced.
    #[test]
    fn prop_churned_hints_keep_answer_parity(
        seed in 0u64..150,
        vmax in 2.0..18.0f64,
        raw in proptest::collection::vec((0usize..NODES, 0usize..NODES), 1..16),
    ) {
        let pairs = repeat_pairs(&raw, 2);
        let mut hinted = world(seed, true);
        let mut base = world(seed, false);
        // identical mobility on both worlds (queries draw no randomness,
        // so the warming sweep cannot desynchronize the evolutions)
        let mk = || RandomWaypoint::new(
            NODES,
            Scenario::new(NODES, 460.0, 460.0, 55.0).field(),
            1.0,
            vmax,
            0.0,
            SeedSplitter::new(seed).stream("hint-churn", 0),
        );
        let (mut mh, mut mb) = (mk(), mk());
        hinted.query_all(&pairs); // warm pre-churn
        hinted.run_mobile(&mut mh, SimDuration::from_secs(3));
        base.run_mobile(&mut mb, SimDuration::from_secs(3));
        let expected = base.query_all_cache_off(&pairs);
        let got = hinted.query_all(&pairs);
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(
                g.found, e.found,
                "post-churn answer diverged (vmax {})", vmax
            );
        }
        prop_assert!(hinted.hint_stats().lookups > 0);
    }
}

/// A fresh hint whose next hop has left the holder's contact table is a
/// `stale_contact` miss: no probe is launched down the dead edge and the
/// fallback walk reproduces the plain query bit for bit.
#[test]
fn stale_contact_hint_falls_back_to_the_plain_walk() {
    let w = world(11, false);
    let source = NodeId::all(NODES)
        .find(|&s| !w.contact_tables()[s.index()].contacts().is_empty())
        .expect("some node has contacts");
    // a target the plain escalation resolves beyond the zone
    let nb = w.network().tables().of(source);
    let mut scratch = QueryScratch::new();
    let mut plain_stats = MsgStats::new(SimDuration::from_secs(2));
    let Some((target, plain)) = NodeId::all(NODES)
        .filter(|&t| !nb.contains(t))
        .find_map(|t| {
            let out = dsq_query(
                w.network(),
                w.contact_tables(),
                source,
                t,
                3,
                &mut plain_stats,
                w.now(),
                &mut scratch,
            );
            out.found.then_some((t, out))
        })
    else {
        panic!("no beyond-zone target resolvable from {source}");
    };
    // a next hop that is NOT a contact of the source
    let bogus = NodeId::all(NODES)
        .find(|&v| v != source && w.contact_tables()[source.index()].get(v).is_none())
        .expect("source cannot have contacted everyone");
    let mut store = HintStore::new(NODES, 4, 32);
    store.deposit(source, HintKey::node(target), bogus, 1);

    let mut stats = card_manet::card::hints::HintStats::default();
    let mut deposits = Vec::new();
    let mut ctx = HintContext {
        store: &store,
        stats: &mut stats,
        deposits: &mut deposits,
    };
    let mut hinted_stats = MsgStats::new(SimDuration::from_secs(2));
    let hinted = dsq_query_hinted(
        w.network(),
        w.contact_tables(),
        &mut ctx,
        source,
        target,
        3,
        &mut hinted_stats,
        w.now(),
        &mut scratch,
    );
    assert_eq!(hinted, plain, "stale-contact fallback must cost the same");
    assert!(
        stats.stale_contact >= 1,
        "the dead edge must be counted: {stats:?}"
    );
    assert_eq!(stats.probe_msgs, 0, "no probe may cross a dead edge");
    assert_eq!(
        hinted_stats.series_where(|_| true),
        plain_stats.series_where(|_| true),
        "message series must match the plain walk"
    );
}

/// TTL epochs expire hints: after enough validation rounds a once-hot
/// hint reads as `stale_ttl`, and the re-queried answer is still correct.
#[test]
fn ttl_expiry_is_counted_and_harmless() {
    use card_manet::mobility::statics::StaticModel;
    let scenario = Scenario::new(NODES, 460.0, 460.0, 55.0);
    let mut w = CardWorld::build(&scenario, config(5, true).with_hint_ttl(1));
    w.select_all_contacts();
    let nb = w.network().tables().of(NodeId::new(0));
    let Some(target) = NodeId::all(NODES).filter(|&t| !nb.contains(t)).find(|&t| {
        // probe with a throwaway clone so the real world stays cold
        let mut probe = CardWorld::build(&scenario, config(5, false));
        probe.select_all_contacts();
        probe.query(NodeId::new(0), t).found
    }) else {
        return; // vacuous topology
    };
    let first = w.query(NodeId::new(0), target);
    assert!(first.found);
    // static run: validation rounds advance the TTL epoch past ttl=1
    w.run_mobile(&mut StaticModel, SimDuration::from_secs(4));
    let stale_before = w.hint_stats().stale_ttl;
    let again = w.query(NodeId::new(0), target);
    assert!(again.found, "expiry must never lose the answer");
    assert!(
        w.hint_stats().stale_ttl > stale_before,
        "the expired hint must be counted: {:?}",
        w.hint_stats()
    );
}

//! Equivalence guarantees for the re-platformed query engine.
//!
//! The determinism contract these tests pin (see `card_core::query` and
//! the query-sweep section of `card_core::world`):
//!
//! 1. **incremental escalation ≡ per-depth re-walk** — `dsq_query` on a
//!    reused [`QueryScratch`] (depth d only walks its final level; levels
//!    below are charged from the cached cumulative cost) is bit-identical
//!    to `dsq_query_rewalk` (every depth restarts its walk from scratch):
//!    same outcome *and* the same `MsgStats` bucket series, across seeds,
//!    topologies, depths, and scratch-reuse orders;
//! 2. **sharded query sweeps ≡ serial reference** — `CardWorld::query_all`
//!    equals `query_all_serial` (outcomes in pair order, stats series) at
//!    any shard count, including repeated sweeps on the same world (shard
//!    count 1 exercises the inline/single-worker layout, so the sweep is
//!    also pinned as worker-count-independent: queries draw no
//!    randomness);
//! 3. **resource anycast generalizes node lookup** — a resource hosted by
//!    exactly one node is discovered with exactly the node-lookup DSQ's
//!    outcome and message count (both run the one shared walker).

use card_manet::card::query::{dsq_query, dsq_query_rewalk, QueryScratch};
use card_manet::card::resources::{resource_query, ResourceId, ResourceRegistry};
use card_manet::card::world::CardWorld;
use card_manet::card::CardConfig;
use card_manet::sim::stats::MsgStats;
use card_manet::sim::time::SimDuration;
use card_manet::topology::node::NodeId;
use card_manet::topology::scenario::Scenario;
use proptest::prelude::*;

const NODES: usize = 140;

fn world(seed: u64, depth: u16) -> CardWorld {
    let scenario = Scenario::new(NODES, 460.0, 460.0, 55.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_depth(depth)
        .with_seed(seed);
    let mut w = CardWorld::build(&scenario, cfg);
    w.select_all_contacts();
    w
}

fn mk_stats() -> MsgStats {
    MsgStats::new(SimDuration::from_secs(2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental escalation is bit-identical to the from-scratch
    /// per-depth re-walk — outcome and message series — with one scratch
    /// reused across a whole batch of queries of mixed depths.
    #[test]
    fn prop_incremental_matches_rewalk(
        seed in 0u64..300,
        queries in proptest::collection::vec(
            (0usize..NODES, 0usize..NODES, 1u16..5), 1..40),
    ) {
        let w = world(seed, 3);
        let mut scratch = QueryScratch::new();
        for &(s, t, max_depth) in &queries {
            let (s, t) = (NodeId::from(s), NodeId::from(t));
            let mut st_inc = mk_stats();
            let inc = dsq_query(
                w.network(), w.contact_tables(), s, t, max_depth,
                &mut st_inc, w.now(), &mut scratch,
            );
            let mut st_ref = mk_stats();
            let reference = dsq_query_rewalk(
                w.network(), w.contact_tables(), s, t, max_depth,
                &mut st_ref, w.now(),
            );
            prop_assert_eq!(&inc, &reference, "{} -> {} at D={}", s, t, max_depth);
            prop_assert_eq!(
                st_inc.series_where(|_| true),
                st_ref.series_where(|_| true),
                "stats series diverged for {} -> {} at D={}", s, t, max_depth
            );
        }
    }

    /// The sharded batched sweep equals the serial reference — outcomes in
    /// pair order and the merged stats series — at any shard count, and
    /// across repeated sweeps on the same world (scratch reuse).
    #[test]
    fn prop_query_all_sharded_matches_serial(
        seed in 0u64..300,
        shards in 1usize..40,
        pair_seeds in proptest::collection::vec((0usize..NODES, 0usize..NODES), 1..60),
        sweeps in 1usize..3,
    ) {
        let pairs: Vec<(NodeId, NodeId)> = pair_seeds
            .iter()
            .map(|&(s, t)| (NodeId::from(s), NodeId::from(t)))
            .collect();
        let mut serial = world(seed, 3);
        serial.set_shard_count(1);
        let mut par = world(seed, 3);
        par.set_shard_count(shards);
        for sweep in 0..sweeps {
            let expected = serial.query_all_serial(&pairs);
            let got = par.query_all(&pairs);
            prop_assert_eq!(got, expected, "sweep {} at {} shards", sweep, shards);
            prop_assert_eq!(
                par.stats().series_where(|_| true),
                serial.stats().series_where(|_| true),
                "stats diverged on sweep {} at {} shards", sweep, shards
            );
        }
    }

    /// Anycast over a single-host resource is exactly the node-lookup DSQ:
    /// same outcome, same message accounting (the §III.C.4 "node lookup is
    /// the one-replica special case" claim, engine-deep).
    #[test]
    fn prop_single_host_resource_equals_node_lookup(
        seed in 0u64..200,
        source in 0usize..NODES,
        host in 0usize..NODES,
        max_depth in 1u16..4,
    ) {
        let w = world(seed, 3);
        let mut reg = ResourceRegistry::new(NODES, 1);
        reg.add_host(ResourceId(0), NodeId::from(host));
        let mut scratch = QueryScratch::new();
        let mut st_res = mk_stats();
        let via_resource = resource_query(
            w.network(), w.contact_tables(), &reg,
            NodeId::from(source), ResourceId(0), max_depth,
            &mut st_res, w.now(), &mut scratch,
        );
        let mut st_node = mk_stats();
        let via_node = dsq_query(
            w.network(), w.contact_tables(),
            NodeId::from(source), NodeId::from(host), max_depth,
            &mut st_node, w.now(), &mut scratch,
        );
        prop_assert_eq!(via_resource, via_node);
        prop_assert_eq!(
            st_res.series_where(|_| true),
            st_node.series_where(|_| true)
        );
    }
}

/// One deterministic anchor outside proptest: repeated sharded sweeps of
/// the same seed agree with each other, with the serial reference, and
/// with one-at-a-time `CardWorld::query` calls — including the recorded
/// message statistics (catches nondeterminism that shrinkage might mask).
#[test]
fn repeat_query_sweeps_are_identical() {
    let pairs: Vec<(NodeId, NodeId)> = (0..80u32)
        .map(|i| {
            (
                NodeId::new(i % NODES as u32),
                NodeId::new((i * 53 + 11) % NODES as u32),
            )
        })
        .collect();
    let run = |mode: u8| {
        let mut w = world(77, 3);
        let outcomes = match mode {
            0 => w.query_all(&pairs),
            1 => w.query_all_serial(&pairs),
            _ => pairs.iter().map(|&(s, t)| w.query(s, t)).collect(),
        };
        (outcomes, w.stats().series_where(|_| true))
    };
    let first = run(0);
    assert_eq!(first, run(0), "sharded sweeps must repeat exactly");
    assert_eq!(first, run(1), "sharded must equal the serial reference");
    assert_eq!(first, run(2), "sharded must equal one-at-a-time queries");
}

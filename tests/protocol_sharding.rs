//! Equivalence guarantees for the sharded CARD protocol sweeps.
//!
//! `CardWorld::select_all_contacts` and `CardWorld::validation_round` fan
//! out over shards of per-node protocol state on the persistent worker
//! pool. The determinism contract these tests pin:
//!
//! 1. the parallel sweeps are **bit-identical** to the serial reference
//!    paths (`select_all_contacts_serial` / `validation_round_serial`) —
//!    same contact ids, same stored paths, same message totals *and* the
//!    same per-bucket message time series — across seeds and shard counts
//!    (shard count 1 exercises the inline/single-worker layout, so the
//!    sweep is also pinned as worker-count-independent: every node's
//!    decisions draw from its own RNG stream, never from scheduling);
//! 2. equivalence survives *interleaved* mobility: validate → move →
//!    validate must agree between the parallel and serial worlds at every
//!    step, not just at the end;
//! 3. protocol invariants hold on the parallel path's output (tables
//!    bounded by NoC, stored paths valid hop-by-hop routes at selection
//!    time).

use card_manet::card::world::{CardWorld, MaintenanceTotals};
use card_manet::card::{CardConfig, SelectionMethod};
use card_manet::mobility::waypoint::RandomWaypoint;
use card_manet::sim::rng::SeedSplitter;
use card_manet::sim::time::SimDuration;
use card_manet::topology::node::NodeId;
use card_manet::topology::scenario::Scenario;
use proptest::prelude::*;

/// Everything observable about protocol state after a run.
type Snapshot = (
    Vec<Vec<(NodeId, Vec<NodeId>)>>, // per-node contact (id, path) lists
    Vec<u64>,                        // all-kind message series per bucket
    u64,                             // grand message total
    MaintenanceTotals,
);

fn snapshot(w: &CardWorld) -> Snapshot {
    let tables = w
        .contact_tables()
        .iter()
        .map(|t| {
            t.contacts()
                .iter()
                .map(|c| (c.id, c.path.clone()))
                .collect()
        })
        .collect();
    (
        tables,
        w.stats().series_where(|_| true),
        w.stats().grand_total(),
        w.maintenance_totals().clone(),
    )
}

fn world(seed: u64, method: SelectionMethod, shards: Option<usize>) -> CardWorld {
    let scenario = Scenario::new(140, 460.0, 460.0, 55.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(8)
        .with_target_contacts(4)
        .with_method(method)
        .with_seed(seed);
    let mut w = CardWorld::build(&scenario, cfg);
    if let Some(k) = shards {
        w.set_shard_count(k);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel select + validate is bit-identical to the serial reference
    /// across seeds, selection methods and shard counts.
    #[test]
    fn prop_sharded_sweeps_match_serial(
        seed in 0u64..500,
        pm in any::<bool>(),
        shards in 1usize..40,
    ) {
        let method = if pm {
            SelectionMethod::ProbabilisticEq2
        } else {
            SelectionMethod::Edge
        };
        let mut serial = world(seed, method, Some(1));
        serial.select_all_contacts_serial();
        serial.validation_round_serial();
        let expected = snapshot(&serial);

        let mut par = world(seed, method, Some(shards));
        par.select_all_contacts();
        par.validation_round();
        prop_assert_eq!(snapshot(&par), expected, "shards={}", shards);
    }

    /// Equivalence survives interleaved mobility: after every mobility
    /// burst, both worlds validate and must agree exactly.
    #[test]
    fn prop_equivalence_survives_mobility(seed in 0u64..200, shards in 2usize..24) {
        let mk_model = |w: &CardWorld| {
            RandomWaypoint::new(
                w.network().node_count(),
                w.network().field(),
                4.0,
                10.0,
                0.0,
                SeedSplitter::new(seed).stream("shard-prop-mob", 1),
            )
        };
        let mut serial = world(seed, SelectionMethod::Edge, Some(1));
        let mut par = world(seed, SelectionMethod::Edge, Some(shards));
        serial.select_all_contacts_serial();
        par.select_all_contacts();
        let mut serial_model = mk_model(&serial);
        let mut par_model = mk_model(&par);
        for _ in 0..3 {
            serial.run_mobile(&mut serial_model, SimDuration::from_secs(1));
            par.run_mobile(&mut par_model, SimDuration::from_secs(1));
            prop_assert_eq!(snapshot(&par), snapshot(&serial));
        }
    }

    /// Invariants of the parallel path's own output: NoC bound and valid
    /// stored paths on the selection-time topology.
    #[test]
    fn prop_parallel_output_well_formed(seed in 0u64..300, shards in 1usize..32) {
        let mut w = world(seed, SelectionMethod::Edge, Some(shards));
        w.select_all_contacts();
        let cfg = *w.config();
        for (i, table) in w.contact_tables().iter().enumerate() {
            prop_assert!(table.len() <= cfg.target_contacts);
            for c in table.contacts() {
                prop_assert_eq!(c.source(), NodeId::from(i));
                prop_assert!(c.hops() > 2 * cfg.radius);
                prop_assert!(c.hops() <= cfg.max_contact_distance);
                for hop in c.path.windows(2) {
                    prop_assert!(
                        w.network().is_link(hop[0], hop[1]),
                        "stored path of node {} has a dead hop {:?}",
                        i,
                        hop
                    );
                }
            }
        }
    }
}

/// One deterministic end-to-end anchor outside proptest: repeated parallel
/// runs of the same seed agree with each other and with serial, including
/// after a mobile run (catches nondeterminism that proptest shrinkage
/// might mask).
#[test]
fn repeat_parallel_runs_are_identical() {
    let run = |parallel: bool| {
        let mut w = world(77, SelectionMethod::Edge, None);
        if parallel {
            w.select_all_contacts();
        } else {
            w.select_all_contacts_serial();
        }
        let mut model = RandomWaypoint::new(
            w.network().node_count(),
            w.network().field(),
            2.0,
            8.0,
            0.0,
            SeedSplitter::new(77).stream("anchor-mob", 0),
        );
        w.run_mobile(&mut model, SimDuration::from_secs(4));
        snapshot(&w)
    };
    let first = run(true);
    assert_eq!(first, run(true), "parallel runs must repeat exactly");
    assert_eq!(first, run(false), "parallel must equal serial end-to-end");
}

//! Equivalence guarantees for the re-platformed topology hot path.
//!
//! The mobility tick now runs on a CSR adjacency, reusable BFS scratch
//! workspaces and an incremental parallel neighborhood refresh. These tests
//! pin the contracts that refactor must never break:
//!
//! 1. the CSR adjacency built through the spatial grid is edge-for-edge
//!    identical to the naive O(N²) unit-disk definition, and
//! 2. after arbitrary randomized mobility, `Network::refresh` (incremental,
//!    parallel, dirty-set based) produces neighborhood tables identical to
//!    `Network::refresh_full` (the naive rebuild-everything reference) —
//!    across seeds, radii and mobility intensities;
//! 3. the zone-local membership structure (sorted member array + Bloom
//!    fingerprint) answers exactly what the old whole-network membership
//!    bitset answered, for every (owner, probe) pair on random topologies;
//! 4. the mover-only spatial-grid re-bucketing answers range queries
//!    identically to a freshly rebuilt grid across seeds, radii and
//!    mobility intensities (including the churn/overflow fallbacks);
//! 5. the mover-driven pipeline — mobility mover reports feeding
//!    `Adjacency::patch_with_grid` and `Network::refresh_movers` — is
//!    bit-identical (canonical CSR) to the wholesale rebuild across all
//!    four mobility models, seeds, multi-tick sequences, churn-fallback
//!    transitions, and node-count changes.

use card_manet::mobility::model::MobilityModel;
use card_manet::mobility::statics::StaticModel;
use card_manet::prelude::*;
use card_manet::routing::Network;
use card_manet::sim::time::SimDuration;
use card_manet::topology::graph::{Adjacency, PatchScratch};
use card_manet::topology::grid::SpatialGrid;
use card_manet::topology::node::NodeId;
use card_manet::topology::plane::{KernelScratch, PositionPlane};
use proptest::prelude::*;

/// Compare every observable of the two table sets.
fn assert_equivalent(inc: &Network, full: &Network) {
    let n = inc.node_count();
    assert_eq!(inc.adj(), full.adj(), "adjacency snapshots differ");
    assert_eq!(inc.tables().radius(), full.tables().radius());
    for owner in NodeId::all(n) {
        let (a, b) = (inc.tables().of(owner), full.tables().of(owner));
        assert_eq!(a.size(), b.size(), "neighborhood size of {owner}");
        assert_eq!(a.edge_nodes(), b.edge_nodes(), "edge nodes of {owner}");
        for v in NodeId::all(n) {
            assert_eq!(a.contains(v), b.contains(v), "membership {owner}/{v}");
            assert_eq!(a.distance(v), b.distance(v), "distance {owner}/{v}");
        }
        // paths must exist for exactly the members and be valid routes of
        // length == distance (path contents may differ between BFS orders,
        // but both must be correct)
        for v in NodeId::all(n) {
            let (pa, pb) = (a.path_to(v), b.path_to(v));
            assert_eq!(pa.is_some(), pb.is_some(), "path existence {owner}/{v}");
            if let (Some(pa), Some(pb)) = (pa, pb) {
                assert_eq!(pa.len(), pb.len(), "path length {owner}/{v}");
                for w in pa.windows(2) {
                    assert!(
                        inc.adj().is_neighbor(w[0], w[1]),
                        "invalid incremental path hop"
                    );
                }
                for w in pb.windows(2) {
                    assert!(
                        full.adj().is_neighbor(w[0], w[1]),
                        "invalid reference path hop"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CSR adjacency == naive O(N²) unit-disk graph on random scenarios.
    #[test]
    fn csr_matches_naive_unit_disk(
        seed in 0u64..1000,
        nodes in 2usize..120,
        range in 30.0..90.0f64,
    ) {
        let scenario = Scenario::new(nodes, 400.0, 400.0, range);
        let (positions, adj) = scenario.instantiate(seed);
        let r_sq = range * range;
        for i in 0..nodes {
            let expect: Vec<NodeId> = (0..nodes)
                .filter(|&j| j != i && positions[i].dist_sq(positions[j]) <= r_sq)
                .map(NodeId::from)
                .collect();
            prop_assert_eq!(
                adj.neighbors(NodeId::from(i)),
                &expect[..],
                "node {} differs from the O(N^2) definition", i
            );
        }
    }

    /// Incremental refresh == full refresh after randomized mobility, for
    /// R ∈ {1, 2, 3} and a spread of seeds and speeds.
    #[test]
    fn incremental_refresh_equals_full(
        seed in 0u64..500,
        radius in 1u16..4,
        vmax in 2.0..25.0f64,
        steps in 1usize..6,
    ) {
        let scenario = Scenario::new(80, 350.0, 350.0, 60.0);
        let mut inc = Network::from_scenario(&scenario, radius, seed);
        let mut full = Network::from_scenario(&scenario, radius, seed);
        let mk = || RandomWaypoint::new(
            80,
            scenario.field(),
            1.0,
            vmax,
            0.0,
            SeedSplitter::new(seed).stream("equiv-mobility", 0),
        );
        let (mut mi, mut mf) = (mk(), mk());
        for _ in 0..steps {
            inc.advance_positions_only(&mut mi, SimDuration::from_secs(1));
            inc.refresh();
            full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
            full.refresh_full();
        }
        assert_equivalent(&inc, &full);
    }

    /// Zone-local membership (sorted member array + Bloom fingerprint)
    /// answers exactly what the old per-node whole-network bitset answered:
    /// for every (owner, probe) pair, `contains` ⇔ BFS distance ≤ R, and
    /// the sorted member slice is precisely the set bits of that reference
    /// bitset.
    #[test]
    fn zone_membership_matches_old_bitset_semantics(
        seed in 0u64..500,
        nodes in 2usize..90,
        range in 30.0..90.0f64,
        radius in 0u16..4,
    ) {
        let scenario = Scenario::new(nodes, 400.0, 400.0, range);
        let (_, adj) = scenario.instantiate(seed);
        let tables = card_manet::routing::NeighborhoodTables::compute(&adj, radius);
        for owner in NodeId::all(nodes) {
            // reference: the dense membership bitset the old design stored
            let truth = card_manet::topology::bfs::full_bfs(&adj, owner);
            let mut reference = BitSet::new(nodes);
            for v in NodeId::all(nodes) {
                if matches!(truth.distance(v), Some(d) if d <= radius) {
                    reference.insert(v.index());
                }
            }
            let nb = tables.of(owner);
            for v in NodeId::all(nodes) {
                prop_assert_eq!(
                    nb.contains(v),
                    reference.contains(v.index()),
                    "membership {}/{} disagrees with the bitset reference", owner, v
                );
            }
            // probes beyond the id space must read as absent (the old
            // bitset returned false out of range)
            prop_assert!(!nb.contains(NodeId::new(nodes as u32 + 7)));
            let member_indices: Vec<usize> =
                nb.members().iter().map(|m| m.index()).collect();
            prop_assert_eq!(member_indices, reference.to_vec());
        }
    }

    /// Mover-only grid re-bucketing == full rebuild: after randomized
    /// mobility at any intensity (gentle drifts keep the incremental path,
    /// violent ones trip the churn/overflow fallbacks), range queries from
    /// arbitrary centers return exactly the same neighbor sets, and the
    /// adjacency rebuilt through the updated grid equals a from-scratch
    /// build.
    #[test]
    fn mover_only_grid_equals_full_rebuild(
        seed in 0u64..500,
        nodes in 2usize..100,
        range in 30.0..80.0f64,
        vmax in 0.5..40.0f64,
        steps in 1usize..6,
    ) {
        let scenario = Scenario::new(nodes, 400.0, 400.0, range);
        let (mut positions, _) = scenario.instantiate(seed);
        let mut grid = SpatialGrid::new(scenario.field(), range);
        let mut adj = Adjacency::build_with_grid(&mut grid, &positions, range);
        let mut model = RandomWaypoint::new(
            nodes,
            scenario.field(),
            0.5,
            vmax,
            0.0,
            SeedSplitter::new(seed).stream("grid-equiv", 0),
        );
        for step in 0..steps {
            model.advance(&mut positions, SimDuration::from_secs(1));
            adj.rebuild_with_grid(&mut grid, &positions, range);
            // grid-level equivalence at a pseudo-random query center
            let q = positions[(seed as usize + step) % nodes];
            let mut got = grid.within(&positions, q, range, None);
            got.sort();
            let mut fresh = SpatialGrid::new(scenario.field(), range);
            fresh.rebuild(&positions);
            let mut expect = fresh.within(&positions, q, range, None);
            expect.sort();
            prop_assert_eq!(got, expect, "grid query diverged at step {}", step);
            // adjacency-level equivalence (what the protocol layers see)
            let reference = Adjacency::build(scenario.field(), &positions, range);
            prop_assert_eq!(&adj, &reference, "adjacency diverged at step {}", step);
        }
    }

    /// The dirty-set derivation is *sound*: every node whose table would
    /// change under a full recompute lies inside the R-hop ball (old or new
    /// graph) around some changed node — checked here indirectly by
    /// mutating single random links and asserting incremental == full.
    #[test]
    fn single_link_mutations_stay_equivalent(
        seed in 0u64..300,
        radius in 1u16..4,
        flips in proptest::collection::vec((0u32..60, 0u32..60), 1..10),
    ) {
        // Start from a random geometric graph, then flip random edges via
        // the synthetic-topology API and recompute both ways.
        let scenario = Scenario::new(60, 320.0, 320.0, 60.0);
        let (_, mut adj) = scenario.instantiate(seed);
        for &(a, b) in &flips {
            if a == b { continue; }
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            if adj.is_neighbor(a, b) {
                adj.remove_edge(a, b);
            } else {
                adj.add_edge(a, b);
            }
        }
        // Tables computed in one parallel pass must equal per-node BFS.
        let tables = card_manet::routing::NeighborhoodTables::compute(&adj, radius);
        for owner in NodeId::all(60) {
            let truth = card_manet::topology::bfs::khop_bfs(&adj, owner, radius);
            for v in NodeId::all(60) {
                prop_assert_eq!(tables.of(owner).distance(v), truth.distance(v));
            }
        }
    }
}

/// Build one of the four mobility models for the pipeline-equivalence
/// suites. Kind 0 is the walk-and-dwell mix (few movers — the regime that
/// stays on the patch path); 1 is random waypoint with pauses; 2 is group
/// mobility (every member drifts — trips the churn fallback every tick);
/// 3 is the static model (no movers at all).
fn mobility_model(kind: u64, n: usize, field: Field, seed: u64) -> Box<dyn MobilityModel> {
    let rng = SeedSplitter::new(seed).stream("pipeline-equiv", kind);
    match kind % 4 {
        0 => Box::new(RandomWalk::new_with_dwell(
            n, field, 0.5, 2.0, 1.0, 0.9, rng,
        )),
        1 => Box::new(RandomWaypoint::new(n, field, 1.0, 12.0, 0.5, rng)),
        2 => Box::new(GroupMobility::new(n, field, 3, 1.0, 8.0, 30.0, rng)),
        _ => Box::new(StaticModel),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The mover-driven adjacency patch is bit-identical (canonical CSR:
    /// offsets + edges after slack removal) to both the in-place wholesale
    /// rebuild and a from-scratch build, across all four mobility models,
    /// seeds and multi-tick sequences — covering the patch path, the
    /// churn fallback, and no-motion ticks.
    #[test]
    fn patch_pipeline_equals_rebuild_and_fresh_build(
        seed in 0u64..500,
        kind in 0u64..4,
        nodes in 2usize..90,
        steps in 1usize..6,
    ) {
        let scenario = Scenario::new(nodes, 400.0, 400.0, 50.0);
        let (mut positions, _) = scenario.instantiate(seed);
        let field = scenario.field();
        let mut model = mobility_model(kind, nodes, field, seed);
        let mut grid = SpatialGrid::new(field, 50.0);
        let mut patched = Adjacency::build_with_grid(&mut grid, &positions, 50.0);
        let mut grid_ref = SpatialGrid::new(field, 50.0);
        let mut rebuilt = Adjacency::build_with_grid(&mut grid_ref, &positions, 50.0);
        let mut scratch = PatchScratch::new();
        let mut changed = Vec::new();
        let mut movers = Vec::new();
        for step in 0..steps {
            model.advance_reporting(&mut positions, SimDuration::from_millis(600), &mut movers);
            patched.patch_with_grid(&mut grid, &positions, 50.0, &movers, &mut changed, &mut scratch);
            rebuilt.rebuild_with_grid(&mut grid_ref, &positions, 50.0);
            let fresh = Adjacency::build(field, &positions, 50.0);
            prop_assert_eq!(
                patched.canonical_csr(),
                fresh.canonical_csr(),
                "patched != fresh at step {} (model kind {})", step, kind
            );
            prop_assert_eq!(
                rebuilt.canonical_csr(),
                fresh.canonical_csr(),
                "rebuilt != fresh at step {} (model kind {})", step, kind
            );
        }
    }

    /// `Network::advance` — the mover-reported production path
    /// (`advance_reporting` → `refresh_movers` → `patch_with_grid`) —
    /// produces neighborhood tables identical to the rebuild-everything
    /// reference, across mobility models, radii and seeds.
    #[test]
    fn network_mover_path_equals_full(
        seed in 0u64..500,
        kind in 0u64..4,
        radius in 1u16..4,
        steps in 1usize..5,
    ) {
        let scenario = Scenario::new(70, 350.0, 350.0, 60.0);
        let mut inc = Network::from_scenario(&scenario, radius, seed);
        let mut full = Network::from_scenario(&scenario, radius, seed);
        let mut mi = mobility_model(kind, 70, scenario.field(), seed);
        let mut mf = mobility_model(kind, 70, scenario.field(), seed);
        for _ in 0..steps {
            inc.advance(mi.as_mut(), SimDuration::from_millis(800));
            if mf.is_static() {
                // `advance` skips static models entirely; keep the
                // reference in lockstep.
                continue;
            }
            full.advance_positions_only(mf.as_mut(), SimDuration::from_millis(800));
            full.refresh_full();
            assert_equivalent(&inc, &full);
            prop_assert_eq!(
                inc.adj().canonical_csr(),
                full.adj().canonical_csr(),
                "mover-path CSR diverged from reference (model kind {})", kind
            );
        }
    }

    /// Creep motion — everyone reported moving, but by so little that the
    /// range-annulus pre-filter's profit gate engages and drops most
    /// movers from the patch seed — stays bit-identical to the
    /// rebuild-everything reference across seeds, radii and speeds
    /// (larger `vmax` values land on the gate's engage/decline boundary,
    /// covering both sides of it).
    #[test]
    fn network_creep_motion_equals_full(
        seed in 0u64..500,
        radius in 1u16..4,
        vmax in 0.02..0.4f64,
        steps in 1usize..5,
    ) {
        let scenario = Scenario::new(70, 350.0, 350.0, 60.0);
        let mut inc = Network::from_scenario(&scenario, radius, seed);
        let mut full = Network::from_scenario(&scenario, radius, seed);
        let mk = || RandomWalk::new(
            70,
            scenario.field(),
            vmax / 4.0,
            vmax,
            3.0,
            SeedSplitter::new(seed).stream("creep-equiv", 0),
        );
        let (mut mi, mut mf) = (mk(), mk());
        for step in 0..steps {
            inc.advance(&mut mi, SimDuration::from_secs(1));
            full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
            full.refresh_full();
            assert_equivalent(&inc, &full);
            prop_assert_eq!(
                inc.adj().canonical_csr(),
                full.adj().canonical_csr(),
                "creep-path CSR diverged from reference at step {}", step
            );
        }
    }

    /// The SoA `PositionPlane` stays lane-for-lane coherent with the f64
    /// `Point2` array across mobility ticks of every model — through patch
    /// ticks, churn fallbacks and interleaved report-free/scalar refreshes.
    #[test]
    fn network_plane_stays_coherent(
        seed in 0u64..500,
        kind in 0u64..4,
        steps in 2usize..7,
    ) {
        let scenario = Scenario::new(70, 350.0, 350.0, 60.0);
        let mut net = Network::from_scenario(&scenario, 2, seed);
        prop_assert!(net.position_plane().is_coherent(net.positions()));
        let mut model = mobility_model(kind, 70, scenario.field(), seed);
        for step in 0..steps {
            match step % 3 {
                // the mover-driven kernel patch (or its churn fallback)
                0 => net.advance(model.as_mut(), SimDuration::from_millis(800)),
                // the report-free kernel rebuild
                1 => {
                    net.advance_positions_only(model.as_mut(), SimDuration::from_millis(800));
                    net.refresh();
                }
                // the scalar reference rebuild must re-mirror the plane too
                _ => {
                    net.advance_positions_only(model.as_mut(), SimDuration::from_millis(800));
                    net.refresh_full();
                }
            }
            prop_assert!(
                net.position_plane().is_coherent(net.positions()),
                "plane incoherent after step {} (model kind {})", step, kind
            );
        }
    }

    /// Borderline-pair stress at the network level: node clusters whose
    /// pair distances are dithered within (a few ulps of) the f32 error
    /// band around the transmission range, then creep motion keeping them
    /// there. The kernel-driven network must stay bit-identical to the
    /// scalar rebuild-everything reference — every near-range link
    /// decision resolved exactly.
    #[test]
    fn network_borderline_dither_equals_full(
        seed in 0u64..500,
        dithers in proptest::collection::vec(-300i64..300, 20..60),
        steps in 1usize..4,
    ) {
        let range = 60.0;
        let field = Field::square(350.0);
        // chain the nodes at near-range spacings with sub-f32-ulp dither
        let positions: Vec<Point2> = dithers.iter().enumerate().map(|(k, &d)| {
            let dither = d as f64 * 1e-8;
            let step = range * 0.5 + dither;
            Point2::new(
                (20.0 + (k as f64 * step) % 310.0).clamp(0.0, 350.0),
                (20.0 + ((k / 5) as f64) * (range + dither)).clamp(0.0, 350.0),
            )
        }).collect();
        let mut inc = Network::from_positions(field, positions.clone(), range, 2);
        let mut full = Network::from_positions(field, positions, range, 2);
        assert_equivalent(&inc, &full);
        let mk = || RandomWalk::new(
            dithers.len(),
            field,
            1e-7,
            3e-6,
            2.0,
            SeedSplitter::new(seed).stream("borderline-equiv", 0),
        );
        let (mut mi, mut mf) = (mk(), mk());
        for step in 0..steps {
            inc.advance(&mut mi, SimDuration::from_secs(1));
            full.advance_positions_only(&mut mf, SimDuration::from_secs(1));
            full.refresh_full();
            assert_equivalent(&inc, &full);
            prop_assert_eq!(
                inc.adj().canonical_csr(),
                full.adj().canonical_csr(),
                "borderline CSR diverged at step {}", step
            );
            prop_assert!(inc.position_plane().is_coherent(inc.positions()));
        }
    }
}

#[test]
fn patch_survives_node_count_transitions() {
    // Tick a dwell walk (patch path), shrink the node set (Full fallback),
    // then keep ticking on the new count — equivalence must hold through
    // every transition.
    let scenario = Scenario::new(60, 400.0, 400.0, 50.0);
    let field = scenario.field();
    let (mut positions, _) = scenario.instantiate(11);
    let mut grid = SpatialGrid::new(field, 50.0);
    let mut adj = Adjacency::build_with_grid(&mut grid, &positions, 50.0);
    let mut scratch = PatchScratch::new();
    let mut changed = Vec::new();
    let mut movers = Vec::new();

    let mut model = RandomWalk::new_with_dwell(
        60,
        field,
        0.5,
        2.0,
        1.0,
        0.9,
        SeedSplitter::new(3).stream("count-change", 0),
    );
    for _ in 0..3 {
        model.advance_reporting(&mut positions, SimDuration::from_millis(500), &mut movers);
        adj.patch_with_grid(
            &mut grid,
            &positions,
            50.0,
            &movers,
            &mut changed,
            &mut scratch,
        );
        assert_eq!(
            adj.canonical_csr(),
            Adjacency::build(field, &positions, 50.0).canonical_csr()
        );
    }
    // shrink: the patch must detect the count change and rebuild wholesale
    positions.truncate(40);
    adj.patch_with_grid(&mut grid, &positions, 50.0, &[], &mut changed, &mut scratch);
    assert_eq!(adj.node_count(), 40);
    assert_eq!(
        adj.canonical_csr(),
        Adjacency::build(field, &positions, 50.0).canonical_csr()
    );
    // and patching keeps working on the new population
    let mut model = RandomWalk::new_with_dwell(
        40,
        field,
        0.5,
        2.0,
        1.0,
        0.9,
        SeedSplitter::new(3).stream("count-change", 1),
    );
    for _ in 0..3 {
        model.advance_reporting(&mut positions, SimDuration::from_millis(500), &mut movers);
        adj.patch_with_grid(
            &mut grid,
            &positions,
            50.0,
            &movers,
            &mut changed,
            &mut scratch,
        );
        assert_eq!(
            adj.canonical_csr(),
            Adjacency::build(field, &positions, 50.0).canonical_csr()
        );
    }
}

#[test]
fn kernel_patch_survives_node_count_transitions() {
    // The kernel twin of `patch_survives_node_count_transitions`: the
    // plane-backed patch path through a shrink of the node set. The plane
    // must re-mirror itself on the count change and every CSR stay equal
    // to the from-scratch build.
    let scenario = Scenario::new(60, 400.0, 400.0, 50.0);
    let field = scenario.field();
    let (mut positions, _) = scenario.instantiate(11);
    let mut grid = SpatialGrid::new(field, 50.0);
    let mut plane = PositionPlane::new();
    let mut kscratch = KernelScratch::new();
    let mut adj = Adjacency::with_nodes(positions.len());
    adj.rebuild_with_grid_parallel(&mut grid, &mut plane, &positions, 50.0, &mut kscratch);
    let mut scratch = PatchScratch::new();
    let mut changed = Vec::new();
    let mut movers = Vec::new();

    let mut tick = |adj: &mut Adjacency,
                    grid: &mut SpatialGrid,
                    plane: &mut PositionPlane,
                    kscratch: &mut KernelScratch,
                    positions: &[Point2],
                    movers: &[NodeId]| {
        adj.patch_with_grid_kernel(
            grid,
            plane,
            positions,
            50.0,
            movers,
            movers,
            &mut changed,
            &mut scratch,
            kscratch,
        );
        assert!(plane.is_coherent(positions), "plane incoherent");
        assert_eq!(
            adj.canonical_csr(),
            Adjacency::build(field, positions, 50.0).canonical_csr()
        );
    };

    let mut model = RandomWalk::new_with_dwell(
        60,
        field,
        0.5,
        2.0,
        1.0,
        0.9,
        SeedSplitter::new(3).stream("kernel-count-change", 0),
    );
    for _ in 0..3 {
        model.advance_reporting(&mut positions, SimDuration::from_millis(500), &mut movers);
        tick(
            &mut adj,
            &mut grid,
            &mut plane,
            &mut kscratch,
            &positions,
            &movers,
        );
    }
    // shrink: patch detects the count change, falls back to the parallel
    // kernel rebuild, and the plane re-mirrors the shorter array
    positions.truncate(40);
    tick(
        &mut adj,
        &mut grid,
        &mut plane,
        &mut kscratch,
        &positions,
        &[],
    );
    assert_eq!(adj.node_count(), 40);
    assert_eq!(plane.len(), 40);
    // and kernel patching keeps working on the new population
    let mut model = RandomWalk::new_with_dwell(
        40,
        field,
        0.5,
        2.0,
        1.0,
        0.9,
        SeedSplitter::new(3).stream("kernel-count-change", 1),
    );
    for _ in 0..3 {
        model.advance_reporting(&mut positions, SimDuration::from_millis(500), &mut movers);
        tick(
            &mut adj,
            &mut grid,
            &mut plane,
            &mut kscratch,
            &positions,
            &movers,
        );
    }
}

#[test]
fn refresh_is_identity_without_motion() {
    let scenario = Scenario::new(100, 400.0, 400.0, 55.0);
    let mut net = Network::from_scenario(&scenario, 2, 9);
    let before: Vec<usize> = NodeId::all(100)
        .map(|v| net.tables().of(v).size())
        .collect();
    for _ in 0..3 {
        net.refresh();
    }
    let after: Vec<usize> = NodeId::all(100)
        .map(|v| net.tables().of(v).size())
        .collect();
    assert_eq!(before, after);
}

#[test]
fn adjacency_equality_is_structural() {
    // PartialEq on the CSR type compares offsets + edges — the invariant
    // the diff in Network::refresh depends on.
    let scenario = Scenario::new(50, 300.0, 300.0, 60.0);
    let (_, a) = scenario.instantiate(4);
    let (_, b) = scenario.instantiate(4);
    assert_eq!(a, b);
    let mut c: Adjacency = a.clone();
    c.add_edge(NodeId::new(0), NodeId::new(49));
    assert_ne!(a, c);
    c.remove_edge(NodeId::new(0), NodeId::new(49));
    assert_eq!(a, c);
}

//! Integration: the resource layer end-to-end on scenario topologies.

use card_manet::card::resources::{
    discoverable_resources, distribute, resource_query, ResourceDistribution, ResourceId,
};
use card_manet::prelude::*;
use card_manet::sim::stats::MsgStats;

fn world() -> CardWorld {
    let scenario = Scenario::new(200, 550.0, 550.0, 55.0);
    let cfg = CardConfig::default()
        .with_radius(2)
        .with_max_contact_distance(10)
        .with_target_contacts(5)
        .with_depth(2)
        .with_seed(404);
    let mut w = CardWorld::build(&scenario, cfg);
    w.select_all_contacts();
    w
}

#[test]
fn node_lookup_is_a_special_case_of_resource_lookup() {
    let mut w = world();
    // a resource hosted by exactly one node behaves like node lookup
    let host = NodeId::new(150);
    let mut reg = card_manet::card::resources::ResourceRegistry::new(200, 1);
    reg.add_host(ResourceId(0), host);
    let source = NodeId::new(0);

    let mut st = MsgStats::default();
    let via_resource = resource_query(
        w.network(),
        w.contact_tables(),
        &reg,
        source,
        ResourceId(0),
        2,
        &mut st,
        w.now(),
        &mut QueryScratch::new(),
    );
    let via_node = w.query(source, host);
    assert_eq!(via_resource.found, via_node.found);
    if via_resource.found {
        assert_eq!(via_resource.depth_used, via_node.depth_used);
        assert_eq!(via_resource.query_msgs, via_node.query_msgs);
    }
}

#[test]
fn replication_weakly_improves_every_source() {
    let w = world();
    let mut rng = SeedSplitter::new(9).stream("hosts", 0);
    let sparse = distribute(
        w.network(),
        5,
        ResourceDistribution::UniformReplicated { replicas: 1 },
        &mut rng,
    );
    // add replicas ON TOP of the sparse placement: every formerly
    // discoverable resource stays discoverable
    let mut dense = sparse.clone();
    for r in 0..5u32 {
        for _ in 0..4 {
            dense.add_host(ResourceId(r), NodeId::from(rng.index(200)));
        }
    }
    for source in NodeId::all(40) {
        let before = discoverable_resources(w.network(), w.contact_tables(), &sparse, source, 2);
        let after = discoverable_resources(w.network(), w.contact_tables(), &dense, source, 2);
        for r in &before {
            assert!(
                after.contains(r),
                "adding replicas must not lose {r} for {source}"
            );
        }
    }
}

#[test]
fn anycast_cost_bounded_by_unicast_cost() {
    let w = world();
    let mut reg = card_manet::card::resources::ResourceRegistry::new(200, 1);
    // several replicas: the anycast query can stop at whichever zone
    // answers first, never costing more than the full sweep a miss costs
    for host in [30u32, 90, 160] {
        reg.add_host(ResourceId(0), NodeId::new(host));
    }
    let empty = card_manet::card::resources::ResourceRegistry::new(200, 1);
    for source in NodeId::all(25) {
        let mut st = MsgStats::default();
        let hit = resource_query(
            w.network(),
            w.contact_tables(),
            &reg,
            source,
            ResourceId(0),
            2,
            &mut st,
            w.now(),
            &mut QueryScratch::new(),
        );
        let mut st = MsgStats::default();
        let miss = resource_query(
            w.network(),
            w.contact_tables(),
            &empty,
            source,
            ResourceId(0),
            2,
            &mut st,
            w.now(),
            &mut QueryScratch::new(),
        );
        assert!(
            hit.query_msgs <= miss.query_msgs,
            "a hit ({}) can never out-cost the exhaustive miss ({}) from {source}",
            hit.query_msgs,
            miss.query_msgs
        );
    }
}

#[test]
fn distributions_cover_all_resources() {
    let w = world();
    let mut rng = SeedSplitter::new(11).stream("dist", 0);
    for dist in [
        ResourceDistribution::UniformReplicated { replicas: 3 },
        ResourceDistribution::Clustered { replicas: 3 },
    ] {
        let reg = distribute(w.network(), 8, dist, &mut rng);
        for r in 0..8u32 {
            assert!(
                reg.host_count(ResourceId(r)) >= 1,
                "{dist:?} left {r:?} without hosts"
            );
        }
    }
}
